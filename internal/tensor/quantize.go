package tensor

import "fmt"

// QuantizedMatrix is a per-row symmetric int8 quantization of a float32
// matrix: row i stores int8 codes and one float32 scale such that
// value ≈ code × scale. It is the payload format of the PCIe quantization
// extension (paper §VIII names data quantization as the lever against the
// data-transfer bottleneck): features cross the link at 1 byte per element
// instead of 4.
type QuantizedMatrix struct {
	Rows, Cols int
	Codes      []int8
	Scales     []float32 // one per row
}

// Bytes returns the wire size of the quantized payload.
func (q *QuantizedMatrix) Bytes() int64 {
	return int64(len(q.Codes)) + int64(len(q.Scales))*4
}

// QuantizeINT8 quantizes m row-wise to int8 with symmetric per-row scales.
func QuantizeINT8(m *Matrix) *QuantizedMatrix {
	q := &QuantizedMatrix{
		Rows: m.Rows, Cols: m.Cols,
		Codes:  make([]int8, m.Rows*m.Cols),
		Scales: make([]float32, m.Rows),
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var maxAbs float32
		for _, v := range row {
			a := v
			if a < 0 {
				a = -a
			}
			if a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			q.Scales[i] = 1
			continue
		}
		scale := maxAbs / 127
		q.Scales[i] = scale
		out := q.Codes[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			c := v / scale
			switch {
			case c > 127:
				c = 127
			case c < -127:
				c = -127
			}
			if c >= 0 {
				out[j] = int8(c + 0.5)
			} else {
				out[j] = int8(c - 0.5)
			}
		}
	}
	return q
}

// Dequantize reconstructs a float32 matrix from q into dst (same shape).
func (q *QuantizedMatrix) Dequantize(dst *Matrix) error {
	if dst.Rows != q.Rows || dst.Cols != q.Cols {
		return fmt.Errorf("tensor: Dequantize into %dx%d, want %dx%d", dst.Rows, dst.Cols, q.Rows, q.Cols)
	}
	for i := 0; i < q.Rows; i++ {
		scale := q.Scales[i]
		codes := q.Codes[i*q.Cols : (i+1)*q.Cols]
		row := dst.Row(i)
		for j, c := range codes {
			row[j] = float32(c) * scale
		}
	}
	return nil
}

// QuantizeRoundTrip applies quantize→dequantize in place — the precision
// loss a feature matrix suffers crossing a quantized link. Returns the
// maximum absolute element error introduced.
func QuantizeRoundTrip(m *Matrix) float64 {
	q := QuantizeINT8(m)
	orig := m.Clone()
	if err := q.Dequantize(m); err != nil {
		panic(err) // shapes match by construction
	}
	return m.MaxAbsDiff(orig)
}
