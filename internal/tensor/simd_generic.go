//go:build !amd64

package tensor

// Non-amd64 builds have no SIMD kernels: the ceiling is the pure-Go level
// and the stubs below are unreachable (haveAVX2Asm = false dead-codes every
// call site).
const haveAVX2Asm = false

func detectSIMD() SIMDLevel { return SIMDGeneric }

func axpyRowAVX2Asm(dst, src []float32, alpha float32) {
	panic("tensor: axpyRowAVX2Asm without assembly support")
}

func axpyRow4AVX2Asm(c0, c1, c2, c3, b []float32, a0, a1, a2, a3 float32) {
	panic("tensor: axpyRow4AVX2Asm without assembly support")
}

func scaleRowAVX2Asm(dst, src []float32, s float32) {
	panic("tensor: scaleRowAVX2Asm without assembly support")
}

func addBiasReLUAVX2Asm(row, bias, mask []float32) {
	panic("tensor: addBiasReLUAVX2Asm without assembly support")
}

func reluMaskAVX2Asm(data, mask []float32) {
	panic("tensor: reluMaskAVX2Asm without assembly support")
}

func copyRowAVX2Asm(dst, src []float32) {
	panic("tensor: copyRowAVX2Asm without assembly support")
}

func rowMaxAVX2Asm(src []float32) float32 {
	panic("tensor: rowMaxAVX2Asm without assembly support")
}

func subScalarAVX2Asm(dst, src []float32, s float32) {
	panic("tensor: subScalarAVX2Asm without assembly support")
}
