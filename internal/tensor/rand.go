package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64). Every stochastic component in the repository takes an
// explicit *RNG so experiments are reproducible and trainers can hold
// independent streams without locking.
type RNG struct{ state uint64 }

// NewRNG seeds a generator. Distinct seeds yield independent-looking streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed + 0x9E3779B97F4A7C15} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Split derives a new independent generator from r.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// XavierInit fills m with Glorot-uniform values for a fanIn×fanOut layer.
func XavierInit(m *Matrix, rng *RNG) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = float32((rng.Float64()*2 - 1) * limit)
	}
}

// NormalInit fills m with N(0, std²) values.
func NormalInit(m *Matrix, std float64, rng *RNG) {
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * std)
	}
}
