package tensor

import (
	"fmt"
	"math"
)

// Add computes dst = a + b element-wise. Shapes must match.
func Add(dst, a, b *Matrix) {
	checkSameShape("Add", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Sub computes dst = a − b element-wise.
func Sub(dst, a, b *Matrix) {
	checkSameShape("Sub", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// Scale multiplies every element of m by s in place.
func Scale(m *Matrix, s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Axpy computes y += alpha·x element-wise (shapes must match).
func Axpy(y *Matrix, alpha float32, x *Matrix) {
	if y.Rows != x.Rows || y.Cols != x.Cols {
		panic("tensor: Axpy shape mismatch")
	}
	for i, v := range x.Data {
		y.Data[i] += alpha * v
	}
}

// AddBias adds a 1×n bias row to every row of m (m is r×n).
func AddBias(m *Matrix, bias *Matrix) {
	if bias.Rows != 1 || bias.Cols != m.Cols {
		panic("tensor: AddBias wants 1xN bias matching m.Cols")
	}
	if Parallelism() <= 1 {
		addBiasRange(m, bias, 0, m.Rows)
		return
	}
	parallelRows(m.Rows, func(lo, hi int) { addBiasRange(m, bias, lo, hi) })
}

func addBiasRange(m, bias *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := m.Row(i)
		for j, bv := range bias.Data {
			row[j] += bv
		}
	}
}

// BiasGrad accumulates the column sums of dY into a 1×n gradient.
func BiasGrad(grad, dy *Matrix) {
	if grad.Rows != 1 || grad.Cols != dy.Cols {
		panic("tensor: BiasGrad shape mismatch")
	}
	for i := 0; i < dy.Rows; i++ {
		row := dy.Row(i)
		for j, v := range row {
			grad.Data[j] += v
		}
	}
}

// ReLU applies max(0, x) in place and returns a mask matrix with 1 where the
// input was positive (for the backward pass). Allocating wrapper around
// ReLUInto for callers outside the zero-allocation loops.
func ReLU(m *Matrix) *Matrix {
	mask := New(m.Rows, m.Cols)
	ReLUInto(m, mask)
	return mask
}

// ReLUInto applies max(0, x) in place and writes the backward-pass mask (1
// where the input was positive, else 0) into the caller-provided mask, which
// is fully overwritten — workspace buffers need no pre-zeroing.
func ReLUInto(m, mask *Matrix) {
	if mask.Rows != m.Rows || mask.Cols != m.Cols {
		panic("tensor: ReLUInto mask shape mismatch")
	}
	md := mask.Data[:len(m.Data)]
	n := len(m.Data)
	q := 0
	if haveAVX2Asm && n >= 8 && simdAtLeast(SIMDAVX2) {
		// The matrix is contiguous, so the whole tensor is one flat pass.
		q = n &^ 7
		reluMaskAVX2Asm(m.Data[:q], md[:q])
	}
	reluMaskScalar(m.Data[q:], md[q:])
}

// reluMaskScalar is the scalar ReLU+mask loop, shared by the generic path
// and the AVX2 tail. The AVX2 kernel mirrors this branch exactly (compare,
// then AND): v = -0.0 and v = NaN write +0.0 with mask 0 on both paths.
func reluMaskScalar(data, mask []float32) {
	for i, v := range data {
		if v > 0 {
			mask[i] = 1
		} else {
			data[i] = 0
			mask[i] = 0
		}
	}
}

// AddBiasReLU fuses AddBias + ReLUInto into one pass over m: every row gets
// the 1×n bias added, activations are clamped at zero in place, and the
// backward mask is written into the caller-provided mask (fully
// overwritten). One memory pass instead of the three the unfused sequence
// (matmul store, bias read-modify-write, relu read-modify-write) costs.
func AddBiasReLU(m, bias, mask *Matrix) {
	if bias.Rows != 1 || bias.Cols != m.Cols {
		panic("tensor: AddBiasReLU wants 1xN bias matching m.Cols")
	}
	if mask.Rows != m.Rows || mask.Cols != m.Cols {
		panic("tensor: AddBiasReLU mask shape mismatch")
	}
	if Parallelism() <= 1 {
		addBiasReLURange(m, bias, mask, 0, m.Rows)
		return
	}
	parallelRows(m.Rows, func(lo, hi int) { addBiasReLURange(m, bias, mask, lo, hi) })
}

func addBiasReLURange(m, bias, mask *Matrix, lo, hi int) {
	bd := bias.Data
	n := len(bd)
	q := 0
	if haveAVX2Asm && n >= 8 && simdAtLeast(SIMDAVX2) {
		q = n &^ 7
	}
	for i := lo; i < hi; i++ {
		row := m.Row(i)
		mrow := mask.Row(i)[:len(row)]
		if q > 0 {
			addBiasReLUAVX2Asm(row[:q], bd[:q], mrow[:q])
		}
		for j := q; j < n; j++ {
			v := row[j] + bd[j]
			if v > 0 {
				row[j] = v
				mrow[j] = 1
			} else {
				row[j] = 0
				mrow[j] = 0
			}
		}
	}
}

// ReLUBackward multiplies dy by the ReLU mask in place.
func ReLUBackward(dy, mask *Matrix) {
	if dy.Rows != mask.Rows || dy.Cols != mask.Cols {
		panic("tensor: ReLUBackward shape mismatch")
	}
	for i := range dy.Data {
		dy.Data[i] *= mask.Data[i]
	}
}

// SoftmaxCrossEntropy computes mean softmax cross-entropy loss over rows of
// logits against integer labels, and writes dLogits = (softmax − onehot)/rows
// into grad (same shape as logits, pre-allocated). It returns the loss and
// the number of correct argmax predictions.
func SoftmaxCrossEntropy(grad, logits *Matrix, labels []int32) (loss float64, correct int) {
	if len(labels) != logits.Rows {
		panic(fmt.Sprintf("tensor: SoftmaxCrossEntropy %d labels for %d rows", len(labels), logits.Rows))
	}
	if grad.Rows != logits.Rows || grad.Cols != logits.Cols {
		panic("tensor: SoftmaxCrossEntropy grad shape mismatch")
	}
	n := logits.Rows
	if n == 0 {
		return 0, 0
	}
	inv := float32(1.0 / float64(n))
	var totalLoss float64
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		grow := grad.Row(i)
		// Numerically stable softmax. The row max and the shift go through
		// SIMD (selection and a single float32 subtract are exact at any
		// width); exp and the float64 sum/log stay scalar.
		maxv, argmax := rowMax(row)
		// Stage the shifted logits v−maxv into the grad row: it is scratch
		// until the final pass overwrites it in place, so the wide shift
		// costs no extra buffer.
		subScalarInto(grow, row, maxv)
		var sum float64
		for _, v := range grow {
			sum += math.Exp(float64(v))
		}
		logSum := math.Log(sum)
		lbl := int(labels[i])
		if lbl < 0 || lbl >= logits.Cols {
			panic(fmt.Sprintf("tensor: label %d out of range [0,%d)", lbl, logits.Cols))
		}
		totalLoss += logSum - float64(grow[lbl])
		if argmax == lbl {
			correct++
		}
		for j, v := range grow {
			p := float32(math.Exp(float64(v)) / sum)
			if j == lbl {
				p -= 1
			}
			grow[j] = p * inv
		}
	}
	return totalLoss / float64(n), correct
}

// rowMax returns the maximum of row (len ≥ 1) and the index of its first
// occurrence — the argmax the scalar first-strict-improvement scan picks.
// The SIMD reduction only finds the maximum *value* (order-independent); the
// index scan then re-reads row[argmax] so the returned bit pattern is the
// element the scalar loop would have kept (VMAXPS's -0.0/+0.0 tie-breaking
// never leaks out).
func rowMax(row []float32) (maxv float32, argmax int) {
	n := len(row)
	maxv = row[0]
	q := 0
	if haveAVX2Asm && n >= 8 && simdAtLeast(SIMDAVX2) {
		q = n &^ 7
		maxv = rowMaxAVX2Asm(row[:q])
	}
	for _, v := range row[q:] {
		if v > maxv {
			maxv = v
		}
	}
	for j, v := range row {
		if v == maxv {
			return row[j], j
		}
	}
	// Unreachable for any row that contains its own maximum; NaN-only rows
	// fall back to the scalar semantics (keep element 0).
	return maxv, 0
}

// subScalarInto computes dst[j] = src[j] − s over len(src) elements.
func subScalarInto(dst, src []float32, s float32) {
	n := len(src)
	dst = dst[:n]
	q := 0
	if haveAVX2Asm && n >= 8 && simdAtLeast(SIMDAVX2) {
		q = n &^ 7
		subScalarAVX2Asm(dst[:q], src[:q], s)
	}
	for j := q; j < n; j++ {
		dst[j] = src[j] - s
	}
}

// ConcatCols writes [a | b] into dst. dst must be r×(a.Cols+b.Cols).
func ConcatCols(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Rows || dst.Cols != a.Cols+b.Cols {
		panic("tensor: ConcatCols shape mismatch")
	}
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(dst.Row(i)[:a.Cols], a.Row(i))
			copy(dst.Row(i)[a.Cols:], b.Row(i))
		}
	})
}

// SplitCols splits dst = [a | b] back into its halves (inverse of ConcatCols),
// copying columns [0,a.Cols) of src into a and the rest into b.
func SplitCols(a, b, src *Matrix) {
	if a.Rows != b.Rows || src.Rows != a.Rows || src.Cols != a.Cols+b.Cols {
		panic("tensor: SplitCols shape mismatch")
	}
	for i := 0; i < src.Rows; i++ {
		copy(a.Row(i), src.Row(i)[:a.Cols])
		copy(b.Row(i), src.Row(i)[a.Cols:])
	}
}

// GatherRows copies rows idx of src into dst (dst is len(idx)×src.Cols).
// Rows split across ParallelRows workers, each copying with the SIMD
// copyRow kernel — the feature-staging gather is the largest memcpy in the
// pipeline's Stage 2.
func GatherRows(dst, src *Matrix, idx []int32) {
	if dst.Rows != len(idx) || dst.Cols != src.Cols {
		panic("tensor: GatherRows shape mismatch")
	}
	if Parallelism() <= 1 {
		gatherRowsRange(dst, src, idx, 0, len(idx))
		return
	}
	parallelRows(len(idx), func(lo, hi int) { gatherRowsRange(dst, src, idx, lo, hi) })
}

// GatherRowsSerial is the single-threaded reference gather — the oracle the
// parallel GatherRows is pinned against bitwise. Destination rows are
// disjoint, so the worker split cannot change a bit; the regression test
// keeps that true as the kernel evolves.
func GatherRowsSerial(dst, src *Matrix, idx []int32) {
	if dst.Rows != len(idx) || dst.Cols != src.Cols {
		panic("tensor: GatherRowsSerial shape mismatch")
	}
	gatherRowsRange(dst, src, idx, 0, len(idx))
}

func gatherRowsRange(dst, src *Matrix, idx []int32, lo, hi int) {
	for i := lo; i < hi; i++ {
		copyRow(dst.Row(i), src.Row(int(idx[i])))
	}
}

// GatherRowsAt copies rows idx of src into the column band
// [dstCol, dstCol+src.Cols) of dst — the fused gather-into-concat the SAGE
// layer uses to build its [self ‖ mean] dense input without a separate self
// matrix and ConcatCols pass.
func GatherRowsAt(dst *Matrix, dstCol int, src *Matrix, idx []int32) {
	if dst.Rows != len(idx) || dstCol < 0 || dstCol+src.Cols > dst.Cols {
		panic("tensor: GatherRowsAt shape mismatch")
	}
	if Parallelism() <= 1 {
		gatherRowsAtRange(dst, dstCol, src, idx, 0, len(idx))
		return
	}
	parallelRows(len(idx), func(lo, hi int) { gatherRowsAtRange(dst, dstCol, src, idx, lo, hi) })
}

func gatherRowsAtRange(dst *Matrix, dstCol int, src *Matrix, idx []int32, lo, hi int) {
	w := src.Cols
	for i := lo; i < hi; i++ {
		copyRow(dst.Row(i)[dstCol:dstCol+w], src.Row(int(idx[i])))
	}
}

// ScatterAddRows adds each row i of src into row idx[i] of dst.
func ScatterAddRows(dst, src *Matrix, idx []int32) {
	if src.Rows != len(idx) || dst.Cols != src.Cols {
		panic("tensor: ScatterAddRows shape mismatch")
	}
	for i, to := range idx {
		drow := dst.Row(int(to))
		srow := src.Row(i)
		for j, v := range srow {
			drow[j] += v
		}
	}
}

// FrobeniusNorm returns the Frobenius norm of m.
func FrobeniusNorm(m *Matrix) float64 {
	var sum float64
	for _, v := range m.Data {
		sum += float64(v) * float64(v)
	}
	return math.Sqrt(sum)
}

func checkSameShape(op string, ms ...*Matrix) {
	r, c := ms[0].Rows, ms[0].Cols
	for _, m := range ms[1:] {
		if m.Rows != r || m.Cols != c {
			panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, r, c, m.Rows, m.Cols))
		}
	}
}
