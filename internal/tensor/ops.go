package tensor

import (
	"fmt"
	"math"
)

// MatMul computes C = A·B. A is m×k, B is k×n, C is m×n. C must be
// pre-allocated; it is overwritten. The kernel is row-parallel with an
// inner loop ordered (i, k, j) for sequential access to B and C.
func MatMul(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shapes %dx%d · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	n := b.Cols
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Data[i*n : (i+1)*n]
			for j := range ci {
				ci[j] = 0
			}
			ai := a.Data[i*a.Cols : (i+1)*a.Cols]
			for kk, av := range ai {
				if av == 0 {
					continue
				}
				bk := b.Data[kk*n : (kk+1)*n]
				for j, bv := range bk {
					ci[j] += av * bv
				}
			}
		}
	})
}

// MatMulT computes C = A·Bᵀ. A is m×k, B is n×k, C is m×n.
func MatMulT(c, a, b *Matrix) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulT shapes %dx%d · (%dx%d)T -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	k := a.Cols
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Data[i*k : (i+1)*k]
			ci := c.Data[i*c.Cols : (i+1)*c.Cols]
			for j := 0; j < b.Rows; j++ {
				bj := b.Data[j*k : (j+1)*k]
				var sum float32
				for t, av := range ai {
					sum += av * bj[t]
				}
				ci[j] = sum
			}
		}
	})
}

// TMatMul computes C = Aᵀ·B. A is k×m, B is k×n, C is m×n. Used for weight
// gradients (C = Xᵀ·dY). Parallelised over rows of C (columns of A).
func TMatMul(c, a, b *Matrix) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: TMatMul shapes (%dx%d)T · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	n := b.Cols
	parallelRows(c.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Data[i*n : (i+1)*n]
			for j := range ci {
				ci[j] = 0
			}
			for kk := 0; kk < a.Rows; kk++ {
				av := a.Data[kk*a.Cols+i]
				if av == 0 {
					continue
				}
				bk := b.Data[kk*n : (kk+1)*n]
				for j, bv := range bk {
					ci[j] += av * bv
				}
			}
		}
	})
}

// Transpose returns Aᵀ as a new matrix.
func Transpose(a *Matrix) *Matrix {
	out := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[j*a.Rows+i] = a.Data[i*a.Cols+j]
		}
	}
	return out
}

// Add computes dst = a + b element-wise. Shapes must match.
func Add(dst, a, b *Matrix) {
	checkSameShape("Add", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Sub computes dst = a − b element-wise.
func Sub(dst, a, b *Matrix) {
	checkSameShape("Sub", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// Scale multiplies every element of m by s in place.
func Scale(m *Matrix, s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Axpy computes y += alpha·x element-wise (shapes must match).
func Axpy(y *Matrix, alpha float32, x *Matrix) {
	if y.Rows != x.Rows || y.Cols != x.Cols {
		panic("tensor: Axpy shape mismatch")
	}
	for i, v := range x.Data {
		y.Data[i] += alpha * v
	}
}

// AddBias adds a 1×n bias row to every row of m (m is r×n).
func AddBias(m *Matrix, bias *Matrix) {
	if bias.Rows != 1 || bias.Cols != m.Cols {
		panic("tensor: AddBias wants 1xN bias matching m.Cols")
	}
	parallelRows(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for j, bv := range bias.Data {
				row[j] += bv
			}
		}
	})
}

// BiasGrad accumulates the column sums of dY into a 1×n gradient.
func BiasGrad(grad, dy *Matrix) {
	if grad.Rows != 1 || grad.Cols != dy.Cols {
		panic("tensor: BiasGrad shape mismatch")
	}
	for i := 0; i < dy.Rows; i++ {
		row := dy.Row(i)
		for j, v := range row {
			grad.Data[j] += v
		}
	}
}

// ReLU applies max(0, x) in place and returns a mask matrix with 1 where the
// input was positive (for the backward pass).
func ReLU(m *Matrix) *Matrix {
	mask := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		if v > 0 {
			mask.Data[i] = 1
		} else {
			m.Data[i] = 0
		}
	}
	return mask
}

// ReLUBackward multiplies dy by the ReLU mask in place.
func ReLUBackward(dy, mask *Matrix) {
	if dy.Rows != mask.Rows || dy.Cols != mask.Cols {
		panic("tensor: ReLUBackward shape mismatch")
	}
	for i := range dy.Data {
		dy.Data[i] *= mask.Data[i]
	}
}

// SoftmaxCrossEntropy computes mean softmax cross-entropy loss over rows of
// logits against integer labels, and writes dLogits = (softmax − onehot)/rows
// into grad (same shape as logits, pre-allocated). It returns the loss and
// the number of correct argmax predictions.
func SoftmaxCrossEntropy(grad, logits *Matrix, labels []int32) (loss float64, correct int) {
	if len(labels) != logits.Rows {
		panic(fmt.Sprintf("tensor: SoftmaxCrossEntropy %d labels for %d rows", len(labels), logits.Rows))
	}
	if grad.Rows != logits.Rows || grad.Cols != logits.Cols {
		panic("tensor: SoftmaxCrossEntropy grad shape mismatch")
	}
	n := logits.Rows
	if n == 0 {
		return 0, 0
	}
	inv := float32(1.0 / float64(n))
	var totalLoss float64
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		grow := grad.Row(i)
		// Numerically stable softmax.
		maxv := row[0]
		argmax := 0
		for j, v := range row {
			if v > maxv {
				maxv = v
				argmax = j
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logSum := math.Log(sum)
		lbl := int(labels[i])
		if lbl < 0 || lbl >= logits.Cols {
			panic(fmt.Sprintf("tensor: label %d out of range [0,%d)", lbl, logits.Cols))
		}
		totalLoss += logSum - float64(row[lbl]-maxv)
		if argmax == lbl {
			correct++
		}
		for j, v := range row {
			p := float32(math.Exp(float64(v-maxv)) / sum)
			if j == lbl {
				p -= 1
			}
			grow[j] = p * inv
		}
	}
	return totalLoss / float64(n), correct
}

// ConcatCols writes [a | b] into dst. dst must be r×(a.Cols+b.Cols).
func ConcatCols(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Rows || dst.Cols != a.Cols+b.Cols {
		panic("tensor: ConcatCols shape mismatch")
	}
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(dst.Row(i)[:a.Cols], a.Row(i))
			copy(dst.Row(i)[a.Cols:], b.Row(i))
		}
	})
}

// SplitCols splits dst = [a | b] back into its halves (inverse of ConcatCols),
// copying columns [0,a.Cols) of src into a and the rest into b.
func SplitCols(a, b, src *Matrix) {
	if a.Rows != b.Rows || src.Rows != a.Rows || src.Cols != a.Cols+b.Cols {
		panic("tensor: SplitCols shape mismatch")
	}
	for i := 0; i < src.Rows; i++ {
		copy(a.Row(i), src.Row(i)[:a.Cols])
		copy(b.Row(i), src.Row(i)[a.Cols:])
	}
}

// GatherRows copies rows idx of src into dst (dst is len(idx)×src.Cols).
func GatherRows(dst, src *Matrix, idx []int32) {
	if dst.Rows != len(idx) || dst.Cols != src.Cols {
		panic("tensor: GatherRows shape mismatch")
	}
	parallelRows(len(idx), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(dst.Row(i), src.Row(int(idx[i])))
		}
	})
}

// ScatterAddRows adds each row i of src into row idx[i] of dst.
func ScatterAddRows(dst, src *Matrix, idx []int32) {
	if src.Rows != len(idx) || dst.Cols != src.Cols {
		panic("tensor: ScatterAddRows shape mismatch")
	}
	for i, to := range idx {
		drow := dst.Row(int(to))
		srow := src.Row(i)
		for j, v := range srow {
			drow[j] += v
		}
	}
}

// FrobeniusNorm returns the Frobenius norm of m.
func FrobeniusNorm(m *Matrix) float64 {
	var sum float64
	for _, v := range m.Data {
		sum += float64(v) * float64(v)
	}
	return math.Sqrt(sum)
}

func checkSameShape(op string, ms ...*Matrix) {
	r, c := ms[0].Rows, ms[0].Cols
	for _, m := range ms[1:] {
		if m.Rows != r || m.Cols != c {
			panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, r, c, m.Rows, m.Cols))
		}
	}
}
