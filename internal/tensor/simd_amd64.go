//go:build amd64

package tensor

// CPU feature detection and the AVX2 kernel declarations for amd64. The
// probe is hand-rolled CPUID/XGETBV assembly (simd_amd64.s) rather than a
// dependency: AVX2 is usable only when the CPU advertises it (leaf 7 EBX bit
// 5), the AVX foundation is present (leaf 1 ECX bit 28), and the OS has
// enabled XMM+YMM state saving (OSXSAVE + XCR0 bits 1–2) — the standard
// three-step check.

// haveAVX2Asm gates compilation of AVX2 call sites; whether the calls are
// *taken* is the runtime level's job (the active level can only reach
// SIMDAVX2 when detection succeeded).
const haveAVX2Asm = true

// cpuidAsm executes CPUID with the given leaf/subleaf.
func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbvAsm reads XCR0 (requires OSXSAVE, checked by the caller).
func xgetbvAsm() (eax, edx uint32)

// detectSIMD probes the CPU once at package init. SSE2 is part of the amd64
// baseline, so SSE is the floor on this architecture.
func detectSIMD() SIMDLevel {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return SIMDSSE
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return SIMDSSE
	}
	xcr0, _ := xgetbvAsm()
	const ymmState = 0x6 // XMM (bit 1) + YMM (bit 2) enabled by the OS
	if xcr0&ymmState != ymmState {
		return SIMDSSE
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx2Bit = 1 << 5
	if ebx7&avx2Bit == 0 {
		return SIMDSSE
	}
	return SIMDAVX2
}

// AVX2 kernels (axpy_avx2_amd64.s). All slice lengths are positive
// multiples of 8, guaranteed by the wrappers; multiply and add stay unfused
// for bit-identity with the scalar and SSE paths.

// axpyRowAVX2Asm computes dst[j] += alpha·src[j].
//
//go:noescape
func axpyRowAVX2Asm(dst, src []float32, alpha float32)

// axpyRow4AVX2Asm computes c0..c3[j] += a0..a3·b[j].
//
//go:noescape
func axpyRow4AVX2Asm(c0, c1, c2, c3, b []float32, a0, a1, a2, a3 float32)

// scaleRowAVX2Asm computes dst[j] = s·src[j].
//
//go:noescape
func scaleRowAVX2Asm(dst, src []float32, s float32)

// addBiasReLUAVX2Asm computes row[j] = relu(row[j]+bias[j]) and mask[j] =
// 1 where the sum was positive, else 0 — the fused AddBiasReLU inner loop.
//
//go:noescape
func addBiasReLUAVX2Asm(row, bias, mask []float32)

// reluMaskAVX2Asm computes data[j] = relu(data[j]) and mask[j] = 1 where the
// input was positive, else 0 — the ReLUInto inner loop.
//
//go:noescape
func reluMaskAVX2Asm(data, mask []float32)

// copyRowAVX2Asm copies src into dst.
//
//go:noescape
func copyRowAVX2Asm(dst, src []float32)

// rowMaxAVX2Asm returns the maximum element of src (len ≥ 8, multiple of 8).
//
//go:noescape
func rowMaxAVX2Asm(src []float32) float32

// subScalarAVX2Asm computes dst[j] = src[j] − s.
//
//go:noescape
func subScalarAVX2Asm(dst, src []float32, s float32)
