package tensor

import (
	"testing"
)

// withSIMD runs fn at a forced dispatch level, restoring the previous level
// afterwards. Kernel parallelism is pinned to 1 so the comparison isolates
// the SIMD path (the cross-parallelism exactness is pinned elsewhere).
func withSIMD(t *testing.T, l SIMDLevel, fn func()) {
	t.Helper()
	prev, err := SetSIMDLevel(l)
	if err != nil {
		t.Fatalf("SetSIMDLevel(%v): %v", l, err)
	}
	defer SetSIMDLevel(prev)
	fn()
}

// availableLevels returns every dispatch level this CPU can execute,
// generic first.
func availableLevels() []SIMDLevel {
	out := []SIMDLevel{SIMDGeneric}
	for l := SIMDSSE; l <= DetectedSIMDLevel(); l++ {
		out = append(out, l)
	}
	return out
}

// ragged covers vector bodies plus scalar tails at every dispatch width:
// below 8 (all-scalar everywhere), 8..15 (AVX2 body + SSE-scalar), exact
// multiples, and wide-with-tail.
var raggedLens = []int{1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 47, 64, 100, 128, 129, 255}

func randSlice(rng *RNG, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func TestAxpyRowExactAcrossSIMDLevels(t *testing.T) {
	prevPar := SetParallelism(1)
	defer SetParallelism(prevPar)
	rng := NewRNG(11)
	for _, n := range raggedLens {
		src := randSlice(rng, n)
		dst0 := randSlice(rng, n)
		alpha := float32(rng.NormFloat64())
		want := append([]float32(nil), dst0...)
		for j := range want {
			want[j] += alpha * src[j]
		}
		for _, l := range availableLevels() {
			withSIMD(t, l, func() {
				got := append([]float32(nil), dst0...)
				AxpyRow(got, src, alpha)
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("AxpyRow n=%d level=%v: got[%d]=%x want %x", n, l, j, got[j], want[j])
					}
				}
			})
		}
	}
}

func TestAxpyRow4ExactAcrossSIMDLevels(t *testing.T) {
	prevPar := SetParallelism(1)
	defer SetParallelism(prevPar)
	rng := NewRNG(12)
	for _, n := range raggedLens {
		b := randSlice(rng, n)
		rows := [4][]float32{randSlice(rng, n), randSlice(rng, n), randSlice(rng, n), randSlice(rng, n)}
		a := [4]float32{}
		for i := range a {
			a[i] = float32(rng.NormFloat64())
		}
		want := [4][]float32{}
		for i := range want {
			want[i] = append([]float32(nil), rows[i]...)
			for j := range want[i] {
				want[i][j] += a[i] * b[j]
			}
		}
		for _, l := range availableLevels() {
			withSIMD(t, l, func() {
				got := [4][]float32{}
				for i := range got {
					got[i] = append([]float32(nil), rows[i]...)
				}
				axpyRow4(got[0], got[1], got[2], got[3], b, a[0], a[1], a[2], a[3])
				for i := range got {
					for j := range got[i] {
						if got[i][j] != want[i][j] {
							t.Fatalf("axpyRow4 n=%d level=%v row %d: got[%d]=%x want %x", n, l, i, j, got[i][j], want[i][j])
						}
					}
				}
			})
		}
	}
}

func TestScaleRowIntoExactAcrossSIMDLevels(t *testing.T) {
	prevPar := SetParallelism(1)
	defer SetParallelism(prevPar)
	rng := NewRNG(13)
	for _, n := range raggedLens {
		src := randSlice(rng, n)
		s := float32(rng.NormFloat64())
		want := make([]float32, n)
		for j := range want {
			want[j] = s * src[j]
		}
		for _, l := range availableLevels() {
			withSIMD(t, l, func() {
				got := make([]float32, n)
				ScaleRowInto(got, src, s)
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("ScaleRowInto n=%d level=%v: got[%d]=%x want %x", n, l, j, got[j], want[j])
					}
				}
			})
		}
	}
}

func TestCopyRowExactAcrossSIMDLevels(t *testing.T) {
	prevPar := SetParallelism(1)
	defer SetParallelism(prevPar)
	rng := NewRNG(14)
	for _, n := range raggedLens {
		src := randSlice(rng, n)
		for _, l := range availableLevels() {
			withSIMD(t, l, func() {
				got := make([]float32, n)
				copyRow(got, src)
				for j := range src {
					if got[j] != src[j] {
						t.Fatalf("copyRow n=%d level=%v: got[%d]=%x want %x", n, l, j, got[j], src[j])
					}
				}
			})
		}
	}
}

// reluEdgeValues exercises the sign-boundary cases the AVX2 compare+AND
// masking must reproduce exactly: negative zero stays a zero output with a
// zero mask, as in the scalar branch.
func reluEdgeValues(rng *RNG, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		switch i % 5 {
		case 0:
			s[i] = float32(rng.NormFloat64())
		case 1:
			s[i] = 0
		case 2:
			s[i] = float32(negZero())
		case 3:
			s[i] = -float32(rng.NormFloat64() * rng.NormFloat64())
		default:
			s[i] = float32(rng.NormFloat64() * 1e-3)
		}
	}
	return s
}

func negZero() float64 { return -0.0 * 1.0 } // dodge constant folding to +0

func TestReLUIntoExactAcrossSIMDLevels(t *testing.T) {
	prevPar := SetParallelism(1)
	defer SetParallelism(prevPar)
	rng := NewRNG(15)
	for _, n := range raggedLens {
		data := reluEdgeValues(rng, 3*n)
		m0 := FromSlice(3, n, data)
		var wantM, wantMask *Matrix
		for _, l := range availableLevels() {
			withSIMD(t, l, func() {
				m := m0.Clone()
				mask := New(3, n)
				mask.Fill(7) // mask must be fully overwritten
				ReLUInto(m, mask)
				if wantM == nil {
					wantM, wantMask = m, mask
					return
				}
				if !m.Equal(wantM) || !mask.Equal(wantMask) {
					t.Fatalf("ReLUInto n=%d level=%v diverges from generic", n, l)
				}
			})
		}
	}
}

func TestAddBiasReLUExactAcrossSIMDLevels(t *testing.T) {
	prevPar := SetParallelism(1)
	defer SetParallelism(prevPar)
	rng := NewRNG(16)
	for _, n := range raggedLens {
		m0 := FromSlice(4, n, reluEdgeValues(rng, 4*n))
		bias := FromSlice(1, n, randSlice(rng, n))
		var wantM, wantMask *Matrix
		for _, l := range availableLevels() {
			withSIMD(t, l, func() {
				m := m0.Clone()
				mask := New(4, n)
				mask.Fill(7)
				AddBiasReLU(m, bias, mask)
				if wantM == nil {
					wantM, wantMask = m, mask
					return
				}
				if !m.Equal(wantM) || !mask.Equal(wantMask) {
					t.Fatalf("AddBiasReLU n=%d level=%v diverges from generic", n, l)
				}
			})
		}
	}
}

func TestGatherRowsAtExactAcrossSIMDLevels(t *testing.T) {
	prevPar := SetParallelism(1)
	defer SetParallelism(prevPar)
	rng := NewRNG(17)
	for _, n := range []int{1, 7, 8, 47, 100, 129} {
		src := FromSlice(6, n, randSlice(rng, 6*n))
		idx := []int32{5, 0, 3, 3, 1}
		var want *Matrix
		for _, l := range availableLevels() {
			withSIMD(t, l, func() {
				dst := New(len(idx), n+3)
				GatherRowsAt(dst, 2, src, idx)
				if want == nil {
					want = dst
					return
				}
				if !dst.Equal(want) {
					t.Fatalf("GatherRowsAt n=%d level=%v diverges from generic", n, l)
				}
			})
		}
	}
}

func TestSoftmaxCrossEntropyExactAcrossSIMDLevels(t *testing.T) {
	prevPar := SetParallelism(1)
	defer SetParallelism(prevPar)
	rng := NewRNG(18)
	for _, n := range []int{2, 5, 7, 8, 9, 16, 47, 100} {
		rows := 9
		logits := FromSlice(rows, n, randSlice(rng, rows*n))
		// Duplicate the max of one row so argmax tie-breaking is exercised.
		logits.Set(2, 0, logits.At(2, n-1))
		labels := make([]int32, rows)
		for i := range labels {
			labels[i] = int32(rng.Intn(n))
		}
		var wantLoss float64
		var wantCorrect int
		var wantGrad *Matrix
		for _, l := range availableLevels() {
			withSIMD(t, l, func() {
				grad := New(rows, n)
				loss, correct := SoftmaxCrossEntropy(grad, logits, labels)
				if wantGrad == nil {
					wantLoss, wantCorrect, wantGrad = loss, correct, grad
					return
				}
				if loss != wantLoss || correct != wantCorrect || !grad.Equal(wantGrad) {
					t.Fatalf("SoftmaxCrossEntropy n=%d level=%v diverges from generic (loss %v vs %v, correct %d vs %d)",
						n, l, loss, wantLoss, correct, wantCorrect)
				}
			})
		}
	}
}

// TestMatMulExactAcrossSIMDLevels pins the whole blocked-GEMM stack against
// the *Ref oracles at every dispatch level (the per-kernel tests above pin
// the row updates; this pins their composition under blocking).
func TestMatMulExactAcrossSIMDLevels(t *testing.T) {
	prevPar := SetParallelism(1)
	defer SetParallelism(prevPar)
	rng := NewRNG(19)
	m, k, n := 33, 70, 47
	a := New(m, k)
	NormalInit(a, 1, rng)
	b := New(k, n)
	NormalInit(b, 1, rng)
	bT := Transpose(b)

	wantMM := New(m, n)
	MatMulRef(wantMM, a, b)
	wantMMT := New(m, n)
	MatMulTRef(wantMMT, a, bT)
	wantTMM := New(k, n)
	TMatMulRef(wantTMM, a, wantMM) // aᵀ·(a·b)

	for _, l := range availableLevels() {
		withSIMD(t, l, func() {
			got := New(m, n)
			MatMul(got, a, b)
			if !got.Equal(wantMM) {
				t.Fatalf("MatMul level=%v diverges from MatMulRef", l)
			}
			got = New(m, n)
			MatMulT(got, a, bT)
			if !got.Equal(wantMMT) {
				t.Fatalf("MatMulT level=%v diverges from MatMulTRef", l)
			}
			got = New(k, n)
			TMatMul(got, a, wantMM)
			if !got.Equal(wantTMM) {
				t.Fatalf("TMatMul level=%v diverges from TMatMulRef", l)
			}
		})
	}
}

func TestSetSIMDLevelValidation(t *testing.T) {
	if _, err := SetSIMDLevel(SIMDLevel(99)); err == nil {
		t.Fatal("SetSIMDLevel(99) should fail")
	}
	if _, err := SetSIMDLevel(SIMDLevel(-1)); err == nil {
		t.Fatal("SetSIMDLevel(-1) should fail")
	}
	if DetectedSIMDLevel() < SIMDAVX2 {
		if _, err := SetSIMDLevel(SIMDAVX2); err == nil {
			t.Fatal("SetSIMDLevel above the hardware ceiling should fail")
		}
	}
	prev, err := SetSIMDLevel(SIMDGeneric)
	if err != nil {
		t.Fatalf("SetSIMDLevel(generic): %v", err)
	}
	if ActiveSIMDLevel() != SIMDGeneric {
		t.Fatalf("active level %v after forcing generic", ActiveSIMDLevel())
	}
	if _, err := SetSIMDLevel(prev); err != nil {
		t.Fatalf("restore: %v", err)
	}
}

func TestParseSIMDLevel(t *testing.T) {
	cases := []struct {
		in   string
		want SIMDLevel
		ok   bool
	}{
		{"auto", DetectedSIMDLevel(), true},
		{"", DetectedSIMDLevel(), true},
		{"generic", SIMDGeneric, true},
		{"SSE", SIMDSSE, true},
		{" avx2 ", SIMDAVX2, true},
		{"avx512", 0, false},
		{"fast", 0, false},
	}
	for _, c := range cases {
		got, err := ParseSIMDLevel(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Fatalf("ParseSIMDLevel(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Fatalf("ParseSIMDLevel(%q) should fail", c.in)
		}
	}
	for _, l := range []SIMDLevel{SIMDGeneric, SIMDSSE, SIMDAVX2} {
		back, err := ParseSIMDLevel(l.String())
		if err != nil || back != l {
			t.Fatalf("round-trip %v: got %v, %v", l, back, err)
		}
	}
}
