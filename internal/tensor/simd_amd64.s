// CPU feature probes for the runtime SIMD dispatch (see simd_amd64.go).

#include "textflag.h"

// func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
