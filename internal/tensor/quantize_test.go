package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantizeRoundTripErrorBound(t *testing.T) {
	rng := NewRNG(1)
	m := New(32, 64)
	NormalInit(m, 2.0, rng)
	orig := m.Clone()
	maxErr := QuantizeRoundTrip(m)
	// Per-row symmetric int8: error ≤ scale/2 = maxAbs(row)/254.
	for i := 0; i < m.Rows; i++ {
		var maxAbs float64
		for _, v := range orig.Row(i) {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		bound := maxAbs/254 + 1e-7
		for j, v := range m.Row(i) {
			if d := math.Abs(float64(v - orig.At(i, j))); d > bound {
				t.Fatalf("row %d col %d error %g > bound %g", i, j, d, bound)
			}
		}
	}
	if maxErr <= 0 {
		t.Fatal("round trip reported no error on random data")
	}
}

func TestQuantizeZeroRow(t *testing.T) {
	m := New(2, 4) // all zeros
	q := QuantizeINT8(m)
	out := New(2, 4)
	if err := q.Dequantize(out); err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Data {
		if v != 0 {
			t.Fatal("zero row did not survive quantization")
		}
	}
}

func TestQuantizeBytes(t *testing.T) {
	m := New(10, 16)
	q := QuantizeINT8(m)
	// 10×16 codes + 10 scales×4B = 200 bytes, vs 640 float32 bytes.
	if q.Bytes() != 10*16+10*4 {
		t.Fatalf("Bytes = %d", q.Bytes())
	}
	if q.Bytes()*3 >= int64(len(m.Data)*4) {
		t.Fatal("quantization should shrink payload by ~4x")
	}
}

func TestDequantizeShapeCheck(t *testing.T) {
	q := QuantizeINT8(New(2, 2))
	if err := q.Dequantize(New(3, 2)); err == nil {
		t.Fatal("expected shape error")
	}
}

// Property: quantization is idempotent — re-quantizing a dequantized matrix
// reproduces the same codes (values are already on the grid).
func TestQuantizeIdempotent(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m := New(4, 8)
		NormalInit(m, 1, rng)
		QuantizeRoundTrip(m)
		once := m.Clone()
		QuantizeRoundTrip(m)
		return m.AllClose(once, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
