// Dense matrix-multiply kernels. The three GEMM variants the GNN hot path
// needs (C = A·B for the dense update, C = A·Bᵀ for its input gradient,
// C = Aᵀ·B for the weight gradient) share one cache-blocked core: a
// row-parallel sweep of 4-row register tiles whose inner loop is the SIMD
// row update axpyRow4 (one load of a B row feeds four C rows), with the
// shared k dimension processed in L2-sized chunks so B stays cache-resident
// and C rows stay in L1 across the sweep. MatMulT packs Bᵀ once (a
// weight-sized transpose) and reuses the same core; the pre-blocking kernel
// re-read all of B once per output row.
//
// Every kernel accumulates each output element over k in ascending order
// starting from zero — exactly the order of the reference triple loops — so
// the blocked results are bit-identical to MatMulRef/MatMulTRef/TMatMulRef
// (float32 addition is not associative; preserving the order is what makes
// the exact-equality property tests possible and keeps every execution
// backend in the repository numerically in lock-step with the pre-blocking
// kernels). The SIMD lanes span the row (j) dimension, which never reorders
// a single element's accumulation.
package tensor

import (
	"fmt"
	"sync"
)

// mmKC is the k-chunk: B rows are consumed mmKC at a time so the chunk
// (mmKC·n floats) stays L2-resident while every 4-row tile of the worker's
// range sweeps it. C accumulates in memory across chunks, which keeps the
// per-element k order intact.
const mmKC = 1024

// packPool recycles MatMulT's Bᵀ scratch so steady-state callers (the
// zero-allocation training and serving loops) never allocate.
var packPool = sync.Pool{New: func() any { return new([]float32) }}

func getPack(n int) (*[]float32, []float32) {
	pp := packPool.Get().(*[]float32)
	if cap(*pp) < n {
		*pp = make([]float32, n)
	}
	return pp, (*pp)[:n]
}

// MatMul computes C = A·B. A is m×k, B is k×n, C is m×n. C must be
// pre-allocated; it is overwritten. The result is bit-identical to
// MatMulRef for every input (see the package comment on ordering).
func MatMul(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shapes %dx%d · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	matMulCore(c, a, b)
}

// matMulCore runs the blocked C = A·B sweep (shapes already validated).
//
// Sparsity: the pre-blocking kernel skipped zero elements of A with a
// per-element branch, which pessimized dense inputs — the branch mispredicts
// on ~50%-zero ReLU activations and costs more than the multiply it saves.
// The blocked structure moves that decision to row-update granularity: one
// predictable compare per (4-row, B-row) tile step, amortized over the full
// row width, taking the fused 4-row SIMD update when all four A values are
// live (the overwhelmingly common dense case) and skipping or issuing
// single-row updates otherwise. Dense inputs pay ~1 compare per 2n flops;
// genuinely sparse inputs still skip their zero rows.
func matMulCore(c, a, b *Matrix) {
	if b.Rows == 0 {
		c.Zero()
		return
	}
	// The row-range body is a named function and the closure literal sits on
	// the parallel branch only: serial execution (the zero-allocation gates
	// run there) never materialises a heap closure.
	if Parallelism() <= 1 {
		matMulRange(c, a, b, 0, a.Rows)
		return
	}
	parallelRows(a.Rows, func(lo, hi int) { matMulRange(c, a, b, lo, hi) })
}

// matMulRange computes rows [lo, hi) of C = A·B.
func matMulRange(c, a, b *Matrix, lo, hi int) {
	k, n := b.Rows, b.Cols
	for i := lo; i < hi; i++ {
		ci := c.Data[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
	}
	for kk0 := 0; kk0 < k; kk0 += mmKC {
		kc := k - kk0
		if kc > mmKC {
			kc = mmKC
		}
		i := lo
		for ; i+4 <= hi; i += 4 {
			c0 := c.Data[i*n : i*n+n]
			c1 := c.Data[(i+1)*n : (i+2)*n][:n]
			c2 := c.Data[(i+2)*n : (i+3)*n][:n]
			c3 := c.Data[(i+3)*n : (i+4)*n][:n]
			a0 := a.Data[i*k+kk0 : i*k+kk0+kc]
			a1 := a.Data[(i+1)*k+kk0 : (i+1)*k+kk0+kc][:kc]
			a2 := a.Data[(i+2)*k+kk0 : (i+2)*k+kk0+kc][:kc]
			a3 := a.Data[(i+3)*k+kk0 : (i+3)*k+kk0+kc][:kc]
			for t := 0; t < kc; t++ {
				brow := b.Data[(kk0+t)*n : (kk0+t)*n+n]
				av0, av1, av2, av3 := a0[t], a1[t], a2[t], a3[t]
				if av0 != 0 && av1 != 0 && av2 != 0 && av3 != 0 {
					axpyRow4(c0, c1, c2, c3, brow, av0, av1, av2, av3)
					continue
				}
				if av0 != 0 {
					AxpyRow(c0, brow, av0)
				}
				if av1 != 0 {
					AxpyRow(c1, brow, av1)
				}
				if av2 != 0 {
					AxpyRow(c2, brow, av2)
				}
				if av3 != 0 {
					AxpyRow(c3, brow, av3)
				}
			}
		}
		for ; i < hi; i++ {
			ci := c.Data[i*n : i*n+n]
			ai := a.Data[i*k+kk0 : i*k+kk0+kc]
			for t, av := range ai {
				if av == 0 {
					continue
				}
				AxpyRow(ci, b.Data[(kk0+t)*n:(kk0+t)*n+n], av)
			}
		}
	}
}

// MatMulT computes C = A·Bᵀ. A is m×k, B is n×k, C is m×n. B is transposed
// once into a pooled scratch panel (B is weight-sized on every call site —
// far smaller than the m×k·n work) and the blocked core does the rest.
// Bit-identical to MatMulTRef: both accumulate each element over the shared
// dimension in ascending order.
func MatMulT(c, a, b *Matrix) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulT shapes %dx%d · (%dx%d)T -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	k, n := a.Cols, b.Rows
	pp, buf := getPack(k * n)
	for j := 0; j < n; j++ {
		brow := b.Data[j*k : (j+1)*k]
		for t, v := range brow {
			buf[t*n+j] = v
		}
	}
	// At parallelism 1 the range kernel is called directly with a
	// stack-scoped header; the parallel branch builds its own header, which
	// escapes into the worker closure (and may allocate — the parallel path
	// allocates goroutines anyway; the zero-allocation gates run serial).
	if Parallelism() <= 1 {
		bt := Matrix{Rows: k, Cols: n, Data: buf}
		matMulRange(c, a, &bt, 0, a.Rows)
	} else {
		matMulCore(c, a, &Matrix{Rows: k, Cols: n, Data: buf})
	}
	packPool.Put(pp)
}

// TMatMul computes C = Aᵀ·B. A is R×m, B is R×n, C is m×n. Used for weight
// gradients (C = Xᵀ·dY), where R (the batch extent) dwarfs m and n. Each
// worker owns a contiguous range of C rows — which stay cache-resident, C
// being at most weight-sized — and streams A and B top to bottom exactly
// once, four C rows per loaded B row. The pre-blocking kernel instead
// re-read all of A and B for every C row. Bit-identical to TMatMulRef: each
// element still accumulates over the shared (row) index in ascending order.
// A here is a post-ReLU activation matrix on the training path, so the
// row-granular zero skip (see matMulCore) pays off.
func TMatMul(c, a, b *Matrix) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: TMatMul shapes (%dx%d)T · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	if Parallelism() <= 1 {
		tMatMulRange(c, a, b, 0, c.Rows)
		return
	}
	parallelRows(c.Rows, func(lo, hi int) { tMatMulRange(c, a, b, lo, hi) })
}

// tMatMulRange computes rows [lo, hi) of C = Aᵀ·B.
func tMatMulRange(c, a, b *Matrix, lo, hi int) {
	m, n, rows := a.Cols, b.Cols, a.Rows
	for i := lo; i < hi; i++ {
		ci := c.Data[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
	}
	for kk := 0; kk < rows; kk++ {
		arow := a.Data[kk*m+lo : kk*m+hi]
		brow := b.Data[kk*n : kk*n+n]
		i := 0
		for ; i+4 <= len(arow); i += 4 {
			av0, av1, av2, av3 := arow[i], arow[i+1], arow[i+2], arow[i+3]
			base := (lo + i) * n
			if av0 != 0 && av1 != 0 && av2 != 0 && av3 != 0 {
				axpyRow4(c.Data[base:base+n], c.Data[base+n:base+2*n],
					c.Data[base+2*n:base+3*n], c.Data[base+3*n:base+4*n],
					brow, av0, av1, av2, av3)
				continue
			}
			if av0 != 0 {
				AxpyRow(c.Data[base:base+n], brow, av0)
			}
			if av1 != 0 {
				AxpyRow(c.Data[base+n:base+2*n], brow, av1)
			}
			if av2 != 0 {
				AxpyRow(c.Data[base+2*n:base+3*n], brow, av2)
			}
			if av3 != 0 {
				AxpyRow(c.Data[base+3*n:base+4*n], brow, av3)
			}
		}
		for ; i < len(arow); i++ {
			if av := arow[i]; av != 0 {
				AxpyRow(c.Data[(lo+i)*n:(lo+i+1)*n], brow, av)
			}
		}
	}
}

// --- Reference kernels -----------------------------------------------------
//
// The pre-blocking triple loops, retained as the correctness oracles for the
// exact-equality property tests and the "before" side of the kernel
// benchmarks (BENCH_kernels.json). Not for hot-path use.

// MatMulRef is the reference C = A·B: the naive (i, k, j) triple loop with
// no blocking, no SIMD and no sparsity skip.
func MatMulRef(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulRef shapes %dx%d · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	n := b.Cols
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Data[i*n : (i+1)*n]
			for j := range ci {
				ci[j] = 0
			}
			ai := a.Data[i*a.Cols : (i+1)*a.Cols]
			for kk, av := range ai {
				bk := b.Data[kk*n : (kk+1)*n]
				for j, bv := range bk {
					ci[j] += av * bv
				}
			}
		}
	})
}

// MatMulTRef is the reference C = A·Bᵀ: one inner product per element.
func MatMulTRef(c, a, b *Matrix) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTRef shapes %dx%d · (%dx%d)T -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	k := a.Cols
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Data[i*k : (i+1)*k]
			ci := c.Data[i*c.Cols : (i+1)*c.Cols]
			for j := 0; j < b.Rows; j++ {
				bj := b.Data[j*k : (j+1)*k]
				var sum float32
				for t, av := range ai {
					sum += av * bj[t]
				}
				ci[j] = sum
			}
		}
	})
}

// TMatMulRef is the reference C = Aᵀ·B: per C row, a full sweep of A's
// column and all of B.
func TMatMulRef(c, a, b *Matrix) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: TMatMulRef shapes (%dx%d)T · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	n := b.Cols
	parallelRows(c.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Data[i*n : (i+1)*n]
			for j := range ci {
				ci[j] = 0
			}
			for kk := 0; kk < a.Rows; kk++ {
				av := a.Data[kk*a.Cols+i]
				bk := b.Data[kk*n : (kk+1)*n]
				for j, bv := range bk {
					ci[j] += av * bv
				}
			}
		}
	})
}

// Transpose returns Aᵀ as a new matrix.
func Transpose(a *Matrix) *Matrix {
	out := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[j*a.Rows+i] = a.Data[i*a.Cols+j]
		}
	}
	return out
}
