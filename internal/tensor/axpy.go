package tensor

// Row-update primitives: the innermost loops of every GEMM and aggregation
// kernel in this package are "c += a·b" row updates over contiguous
// float32 slices. On amd64 they dispatch through the runtime SIMD level
// (simd.go) to AVX2 (8 lanes) or SSE (4 lanes, the architecture baseline)
// assembly, with multiply and add kept as separate instructions: fusing them
// (FMA) would change rounding and break the bit-exact equivalence with the
// reference kernels that the property tests pin down. Vectorising across the
// row (j) never reorders the per-element accumulation over k, so SIMD here
// is exactness-preserving at every level.

// AxpyRow computes dst[j] += alpha·src[j] over len(src) elements (dst must
// be at least as long). It is the shared inner loop of the dense kernels and
// the gnn aggregation scatter; exported so the propagation layers use the
// same SIMD path as the GEMMs.
func AxpyRow(dst, src []float32, alpha float32) {
	n := len(src)
	dst = dst[:n]
	q := 0
	switch {
	case haveAVX2Asm && n >= 8 && simdAtLeast(SIMDAVX2):
		q = n &^ 7
		axpyRowAVX2Asm(dst[:q], src[:q], alpha)
	case haveAxpyAsm && n >= 16 && simdAtLeast(SIMDSSE):
		q = n &^ 15
		axpyRowAsm(dst[:q], src[:q], alpha)
	}
	for j := q; j < n; j++ {
		dst[j] += alpha * src[j]
	}
}

// axpyRow4 computes c0..c3[j] += a0..a3·b[j]: four row updates sharing one
// load of b, the 4-row register tile of the blocked GEMMs.
func axpyRow4(c0, c1, c2, c3, b []float32, a0, a1, a2, a3 float32) {
	n := len(b)
	c0, c1, c2, c3 = c0[:n], c1[:n], c2[:n], c3[:n]
	q := 0
	if n >= 8 {
		switch {
		case haveAVX2Asm && simdAtLeast(SIMDAVX2):
			q = n &^ 7
			axpyRow4AVX2Asm(c0[:q], c1[:q], c2[:q], c3[:q], b[:q], a0, a1, a2, a3)
		case haveAxpyAsm && simdAtLeast(SIMDSSE):
			q = n &^ 7
			axpyRow4Asm(c0[:q], c1[:q], c2[:q], c3[:q], b[:q], a0, a1, a2, a3)
		}
	}
	for j := q; j < n; j++ {
		bv := b[j]
		c0[j] += a0 * bv
		c1[j] += a1 * bv
		c2[j] += a2 * bv
		c3[j] += a3 * bv
	}
}

// AxpyRow4 is the exported form of axpyRow4 — the four-row register tile
// with the highest flop:byte ratio in the package (8 flops per element of
// b, five rows hot). The bench roofline harness uses it over L1-resident
// rows as the machine's achievable FMA-free peak-FLOPS probe.
func AxpyRow4(c0, c1, c2, c3, b []float32, a0, a1, a2, a3 float32) {
	axpyRow4(c0, c1, c2, c3, b, a0, a1, a2, a3)
}

// ScaleRowInto computes dst[j] = s·src[j] over len(src) elements — the
// scale-initialise pass of the gnn aggregation kernel (out = SelfW·h before
// the neighbor AxpyRows accumulate on top), exported for the same reason as
// AxpyRow.
func ScaleRowInto(dst, src []float32, s float32) {
	n := len(src)
	dst = dst[:n]
	q := 0
	if haveAVX2Asm && n >= 8 && simdAtLeast(SIMDAVX2) {
		q = n &^ 7
		scaleRowAVX2Asm(dst[:q], src[:q], s)
	}
	for j := q; j < n; j++ {
		dst[j] = s * src[j]
	}
}

// copyRow copies src into dst (dst at least as long): the row-gather inner
// loop. The AVX2 form exists so a forced generic/sse level still measures
// honestly against memmove (copy), which the lower levels use.
func copyRow(dst, src []float32) {
	n := len(src)
	if haveAVX2Asm && n >= 8 && simdAtLeast(SIMDAVX2) {
		q := n &^ 7
		copyRowAVX2Asm(dst[:q], src[:q])
		if q < n {
			copy(dst[q:n], src[q:])
		}
		return
	}
	copy(dst[:n], src)
}
