package tensor

// Row-update primitives: the innermost loops of every GEMM and aggregation
// kernel in this package are "c += a·b" row updates over contiguous
// float32 slices. On amd64 they dispatch to SSE assembly (4 lanes, the
// architecture baseline — no feature detection needed) with multiply and add
// kept as separate instructions: fusing them (FMA) would change rounding and
// break the bit-exact equivalence with the reference kernels that the
// property tests pin down. Vectorising across the row (j) never reorders the
// per-element accumulation over k, so SIMD here is exactness-preserving.

// AxpyRow computes dst[j] += alpha·src[j] over len(src) elements (dst must
// be at least as long). It is the shared inner loop of the dense kernels and
// the gnn aggregation scatter; exported so the propagation layers use the
// same SIMD path as the GEMMs.
func AxpyRow(dst, src []float32, alpha float32) {
	n := len(src)
	dst = dst[:n]
	q := 0
	if haveAxpyAsm && n >= 16 {
		q = n &^ 15
		axpyRowAsm(dst[:q], src[:q], alpha)
	}
	for j := q; j < n; j++ {
		dst[j] += alpha * src[j]
	}
}

// axpyRow4 computes c0..c3[j] += a0..a3·b[j]: four row updates sharing one
// load of b, the 4-row register tile of the blocked GEMMs.
func axpyRow4(c0, c1, c2, c3, b []float32, a0, a1, a2, a3 float32) {
	n := len(b)
	c0, c1, c2, c3 = c0[:n], c1[:n], c2[:n], c3[:n]
	q := 0
	if haveAxpyAsm && n >= 8 {
		q = n &^ 7
		axpyRow4Asm(c0[:q], c1[:q], c2[:q], c3[:q], b[:q], a0, a1, a2, a3)
	}
	for j := q; j < n; j++ {
		bv := b[j]
		c0[j] += a0 * bv
		c1[j] += a1 * bv
		c2[j] += a2 * bv
		c3[j] += a3 * bv
	}
}
