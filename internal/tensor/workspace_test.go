package tensor

import "testing"

func TestWorkspaceReuseAfterReset(t *testing.T) {
	ws := NewWorkspace()
	m1 := ws.Get(3, 5)
	m1.Fill(7)
	f1 := ws.F32(10)
	i1 := ws.I32(6)
	ws.Reset()
	m2 := ws.Get(4, 4) // same capacity class (16)
	if &m2.Data[0] != &m1.Data[0] {
		t.Fatal("Get after Reset should reuse the same backing array")
	}
	if m2.Rows != 4 || m2.Cols != 4 || len(m2.Data) != 16 {
		t.Fatalf("reshaped matrix wrong: %dx%d len %d", m2.Rows, m2.Cols, len(m2.Data))
	}
	f2 := ws.F32(9)
	if &f2[0] != &f1[0] {
		t.Fatal("F32 after Reset should reuse the same backing array")
	}
	i2 := ws.I32(5)
	if &i2[0] != &i1[0] {
		t.Fatal("I32 after Reset should reuse the same backing array")
	}
}

func TestWorkspaceDistinctWithinIteration(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(2, 2)
	b := ws.Get(2, 2)
	if &a.Data[0] == &b.Data[0] {
		t.Fatal("two Gets without Reset must return distinct buffers")
	}
}

func TestWorkspaceGetZero(t *testing.T) {
	ws := NewWorkspace()
	m := ws.Get(2, 3)
	m.Fill(5)
	ws.Reset()
	z := ws.GetZero(2, 3)
	for _, v := range z.Data {
		if v != 0 {
			t.Fatal("GetZero returned dirty buffer")
		}
	}
}

// TestWorkspaceSteadyStateAllocFree is the arena's own allocation gate: once
// shapes have been seen, a reset-and-borrow iteration allocates nothing.
func TestWorkspaceSteadyStateAllocFree(t *testing.T) {
	ws := NewWorkspace()
	iter := func() {
		ws.Reset()
		ws.Get(33, 7)
		ws.GetZero(8, 8)
		ws.F32(100)
		ws.I32(40)
	}
	iter() // grow
	if allocs := testing.AllocsPerRun(50, iter); allocs != 0 {
		t.Fatalf("steady-state workspace iteration allocated %v times", allocs)
	}
}

func TestCapClass(t *testing.T) {
	for _, tc := range []struct{ n, want int }{{0, 1}, {1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32}} {
		if got := capClass(tc.n); got != tc.want {
			t.Fatalf("capClass(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestWorkspaceBytesGrowsOnce(t *testing.T) {
	ws := NewWorkspace()
	ws.Get(10, 10)
	after1 := ws.Bytes()
	if after1 == 0 {
		t.Fatal("Bytes should report retained footprint")
	}
	ws.Reset()
	ws.Get(10, 10)
	if ws.Bytes() != after1 {
		t.Fatalf("steady-state reuse should not grow footprint: %d -> %d", after1, ws.Bytes())
	}
}
