package tensor

import "testing"

// TestAddBiasReLUMatchesUnfused pins the fused pass to the three-pass
// sequence it replaces (bit-identical: same adds, same clamps).
func TestAddBiasReLUMatchesUnfused(t *testing.T) {
	rng := NewRNG(21)
	for trial := 0; trial < 50; trial++ {
		r := 1 + rng.Intn(20)
		c := 1 + rng.Intn(20)
		m := New(r, c)
		NormalInit(m, 1, rng)
		bias := New(1, c)
		NormalInit(bias, 1, rng)

		want := m.Clone()
		AddBias(want, bias)
		wantMask := ReLU(want)

		mask := New(r, c)
		mask.Fill(9) // fused pass must fully overwrite
		AddBiasReLU(m, bias, mask)
		if !m.Equal(want) {
			t.Fatalf("trial %d: fused activations differ", trial)
		}
		if !mask.Equal(wantMask) {
			t.Fatalf("trial %d: fused mask differs", trial)
		}
	}
}

func TestReLUIntoWritesMaskFully(t *testing.T) {
	m := FromSlice(1, 4, []float32{-1, 2, 0, 3})
	mask := New(1, 4)
	mask.Fill(5)
	ReLUInto(m, mask)
	wantM := []float32{0, 2, 0, 3}
	wantMask := []float32{0, 1, 0, 1}
	for i := range wantM {
		if m.Data[i] != wantM[i] || mask.Data[i] != wantMask[i] {
			t.Fatalf("ReLUInto: got %v / %v", m.Data, mask.Data)
		}
	}
}

func TestGatherRowsAt(t *testing.T) {
	src := FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6})
	dst := New(2, 5)
	dst.Fill(9)
	GatherRowsAt(dst, 2, src, []int32{2, 0})
	want := []float32{9, 9, 5, 6, 9, 9, 9, 1, 2, 9}
	for i, v := range want {
		if dst.Data[i] != v {
			t.Fatalf("GatherRowsAt: got %v want %v", dst.Data, want)
		}
	}
}

func TestGatherRowsAtPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-band column offset")
		}
	}()
	GatherRowsAt(New(1, 3), 2, New(1, 2), []int32{0})
}
