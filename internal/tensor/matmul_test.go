package tensor

import "testing"

// randomOperands draws a trial's shapes and operands, sprinkling exact zeros
// into a (exercising the row-granular sparsity skip) and covering every
// remainder-tile case (rows % 4, cols % SIMD width).
func randomOperands(rng *RNG) (a, b *Matrix) {
	m := 1 + rng.Intn(37)
	k := 1 + rng.Intn(70)
	n := 1 + rng.Intn(37)
	a = New(m, k)
	NormalInit(a, 1, rng)
	b = New(k, n)
	NormalInit(b, 1, rng)
	for i := range a.Data {
		if rng.Intn(3) == 0 {
			a.Data[i] = 0
		}
	}
	return a, b
}

// TestBlockedMatMulExactlyMatchesReference is the property test pinning the
// blocked kernels to the reference triple loops: because every kernel
// accumulates each output element over the shared dimension in ascending
// order (SIMD lanes span independent output elements), the results must be
// bit-identical — not merely close — across random ragged shapes, sparsity
// patterns, and both serial and parallel execution.
func TestBlockedMatMulExactlyMatchesReference(t *testing.T) {
	for _, par := range []int{1, 4} {
		prev := SetParallelism(par)
		rng := NewRNG(42)
		for trial := 0; trial < 300; trial++ {
			a, b := randomOperands(rng)
			m, n := a.Rows, b.Cols
			got, want := New(m, n), New(m, n)

			MatMul(got, a, b)
			MatMulRef(want, a, b)
			if !got.Equal(want) {
				t.Fatalf("par=%d trial %d: MatMul differs from MatMulRef (%dx%d·%dx%d), max diff %g",
					par, trial, m, a.Cols, b.Rows, n, got.MaxAbsDiff(want))
			}

			bt := Transpose(b)
			MatMulT(got, a, bt)
			MatMulTRef(want, a, bt)
			if !got.Equal(want) {
				t.Fatalf("par=%d trial %d: MatMulT differs from MatMulTRef, max diff %g",
					par, trial, got.MaxAbsDiff(want))
			}

			at := Transpose(a)
			TMatMul(got, at, b)
			TMatMulRef(want, at, b)
			if !got.Equal(want) {
				t.Fatalf("par=%d trial %d: TMatMul differs from TMatMulRef, max diff %g",
					par, trial, got.MaxAbsDiff(want))
			}
		}
		SetParallelism(prev)
	}
}

// TestMatMulLayerShapes covers the paper's dense-update shapes (wide batch
// extents, k chunking) rather than the small random trials above.
func TestMatMulLayerShapes(t *testing.T) {
	rng := NewRNG(7)
	for _, sh := range [][3]int{{1024, 128, 128}, {513, 256, 16}, {37, 2048, 8}, {4, 3, 2}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := New(m, k)
		NormalInit(a, 1, rng)
		b := New(k, n)
		NormalInit(b, 1, rng)
		got, want := New(m, n), New(m, n)
		MatMul(got, a, b)
		MatMulRef(want, a, b)
		if !got.Equal(want) {
			t.Fatalf("MatMul %dx%dx%d differs from reference", m, k, n)
		}
	}
}

func TestMatMulZeroK(t *testing.T) {
	a, b := New(3, 0), New(0, 4)
	c := New(3, 4)
	c.Fill(9)
	MatMul(c, a, b)
	for _, v := range c.Data {
		if v != 0 {
			t.Fatalf("MatMul with k=0 should zero C, got %v", c.Data)
		}
	}
}

func TestAxpyRowMatchesScalar(t *testing.T) {
	rng := NewRNG(11)
	for _, n := range []int{0, 1, 7, 8, 15, 16, 17, 64, 129} {
		src := make([]float32, n)
		dst := make([]float32, n)
		want := make([]float32, n)
		for i := 0; i < n; i++ {
			src[i] = float32(rng.NormFloat64())
			dst[i] = float32(rng.NormFloat64())
			want[i] = dst[i]
		}
		alpha := float32(rng.NormFloat64())
		AxpyRow(dst, src, alpha)
		for i := 0; i < n; i++ {
			want[i] += alpha * src[i]
			if dst[i] != want[i] {
				t.Fatalf("n=%d: AxpyRow[%d]=%v, scalar %v", n, i, dst[i], want[i])
			}
		}
	}
}

func TestAxpyRow4MatchesScalar(t *testing.T) {
	rng := NewRNG(12)
	for _, n := range []int{1, 4, 8, 9, 31, 32, 100} {
		b := make([]float32, n)
		cs := make([][]float32, 4)
		want := make([][]float32, 4)
		as := make([]float32, 4)
		for r := range cs {
			cs[r] = make([]float32, n)
			want[r] = make([]float32, n)
			as[r] = float32(rng.NormFloat64())
		}
		for j := 0; j < n; j++ {
			b[j] = float32(rng.NormFloat64())
			for r := range cs {
				cs[r][j] = float32(rng.NormFloat64())
				want[r][j] = cs[r][j] + as[r]*b[j]
			}
		}
		axpyRow4(cs[0], cs[1], cs[2], cs[3], b, as[0], as[1], as[2], as[3])
		for r := range cs {
			for j := 0; j < n; j++ {
				if cs[r][j] != want[r][j] {
					t.Fatalf("n=%d row %d col %d: %v want %v", n, r, j, cs[r][j], want[r][j])
				}
			}
		}
	}
}
