// Sampling-algorithm comparison: the runtime supports both layered neighbor
// sampling (GraphSAGE, the paper's default) and GraphSAINT random-walk
// subgraphs (the paper's reference [29]). §V's performance model treats
// sampling as a profiled, algorithm-specific cost — this example shows both
// algorithms training the same model on the same graph, with held-out
// accuracy from exact full-graph inference.
//
//	go run ./examples/samplers
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/tensor"
)

func main() {
	spec := datagen.Spec{
		Name: "samplers-demo", NumVertices: 4000, NumEdges: 32000,
		FeatDims: []int{24, 24, 6}, TrainNodes: 1600,
	}
	for _, useSaint := range []bool{false, true} {
		name := "neighbor (25,10)"
		if useSaint {
			name = "GraphSAINT (random walks, len 3)"
		}
		// Fresh identical dataset per run for a fair comparison.
		ds, err := datagen.Materialize(spec, 0.4, tensor.NewRNG(99))
		if err != nil {
			log.Fatal(err)
		}
		engine, err := core.NewEngine(core.Config{
			Plat:         hw.CPUFPGAPlatform(),
			Data:         ds,
			Model:        gnn.Config{Kind: gnn.SAGE, Dims: spec.FeatDims},
			LR:           0.3,
			BatchSize:    128,
			Fanouts:      []int{25, 10},
			UseSaint:     useSaint,
			SaintWalkLen: 3,
			Hybrid:       true, TFP: true, DRM: true,
			Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s ---\n", name)
		var virtual float64
		for ep := 0; ep < 6; ep++ {
			st, err := engine.RunEpoch()
			if err != nil {
				log.Fatal(err)
			}
			virtual += st.VirtualSec
			fmt.Printf("epoch %d: loss %.4f  train-acc %.3f  (%.0f MTEPS)\n",
				st.Epoch, st.Loss, st.Accuracy, st.MTEPS)
		}
		acc, err := engine.Evaluate(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("held-out accuracy (full-graph inference): %.3f, total virtual time %.4fs\n\n",
			acc, virtual)
	}
}
