// DRM tuning demo: paper Algorithm 1 in action. We start the pipeline
// simulator from a deliberately terrible task mapping — everything on the
// accelerators, CPU threads split badly — and watch the bottleneck-guided
// optimizer walk the mapping to a balanced state, iteration by iteration.
//
//	go run ./examples/drmtuning
package main

import (
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/internal/drm"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
)

func main() {
	plat := hw.CPUFPGAPlatform()
	m, err := perfmodel.New(plat, perfmodel.DefaultWorkload(datagen.MAG240MHomo, gnn.GCN))
	if err != nil {
		log.Fatal(err)
	}

	// A bad starting point: the CPU trains almost nothing, the loader is
	// starved of threads.
	assign := perfmodel.Assignment{
		CPUBatch:    64,
		AccelBatch:  []int{1008, 1008, 1008, 1008},
		SampThreads: 100, LoadThreads: 8, TrainThreads: 20,
	}
	engine := drm.New(plat.TotalCPUCores())

	fmt.Println("MAG240M(homo) / GCN on 2xEPYC7763 + 4xU250, starting from a bad mapping")
	fmt.Printf("%-5s %-8s %-10s %-22s %-12s\n", "iter", "cpuB", "accB[0]", "threads(S/L/T)", "iter-time")
	for it := 0; it <= 60; it++ {
		st := m.Stages(assign)
		if it%5 == 0 {
			fmt.Printf("%-5d %-8d %-10d %-22s %.4fs\n",
				it, assign.CPUBatch, assign.AccelBatch[0],
				fmt.Sprintf("%d/%d/%d", assign.SampThreads, assign.LoadThreads, assign.TrainThreads),
				m.IterTime(assign))
		}
		assign = engine.Adjust(it, st, assign)
	}
	optimal := m.InitialAssignment(true)
	fmt.Printf("\nDRM moves applied: %d work, %d thread\n", engine.MovesWork, engine.MovesThread)
	fmt.Printf("tuned iteration time:   %.4fs\n", m.IterTime(assign))
	fmt.Printf("design-phase optimum:   %.4fs (coarse model scan)\n", m.IterTime(optimal))
}
