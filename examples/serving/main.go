// Serving walkthrough: train a GraphSAGE model with the hybrid runtime,
// then put it behind the online-serving subsystem — request queue with
// admission control, dynamic batcher, LRU embedding cache, and an
// accelerator worker pool — and watch how the two serving knobs move the
// latency/throughput trade-off:
//
//   - the batch window trades median latency for batching efficiency;
//   - the embedding cache trades memory for overload headroom.
//
// Every run also prints the analytic serving model's prediction next to the
// executed virtual-clock numbers.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func main() {
	// 1. A synthetic products-shaped graph, small enough to serve in a demo.
	spec := datagen.Spec{
		Name: "serving-demo", NumVertices: 5000, NumEdges: 40000,
		FeatDims: []int{64, 48, 8}, TrainNodes: 2500,
	}
	ds, err := datagen.Materialize(spec, 0.5, tensor.NewRNG(42))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train briefly so the served predictions mean something.
	engine, err := core.NewEngine(core.Config{
		Plat: hw.CPUFPGAPlatform(), Data: ds,
		Model: gnn.Config{Kind: gnn.SAGE, Dims: spec.FeatDims},
		LR:    0.3, BatchSize: 128, Fanouts: []int{10, 5},
		Hybrid: true, TFP: true, DRM: true, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Training 3 epochs...")
	for ep := 0; ep < 3; ep++ {
		st, err := engine.RunEpoch()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  epoch %d: loss %.3f acc %.3f\n", st.Epoch, st.Loss, st.Accuracy)
	}
	model := &gnn.Model{
		Cfg:    gnn.Config{Kind: gnn.SAGE, Dims: spec.FeatDims},
		Params: engine.Params(),
	}

	// 3. A common serving configuration: 20k requests, Zipf-popular
	//    vertices, two accelerator workers.
	base := serve.Config{
		Plat: hw.CPUFPGAPlatform(), Data: ds, Model: model,
		Fanouts: []int{10, 5}, NumRequests: 10000, RatePerSec: 4000,
		ZipfExponent: 1.1, MaxBatch: 32, WindowSec: 0.5e-3, Workers: 2,
		QueueCap: 1024, CacheSize: 0, Seed: 7,
	}

	// 4. Knob 1 — the batch window: wider windows form bigger batches
	//    (higher capacity) but every request waits longer for its batch.
	fmt.Println("\n--- batch window sweep (no cache, moderate load) ---")
	for _, windowUs := range []float64{0, 500, 2000} {
		cfg := base
		cfg.WindowSec = windowUs * 1e-6
		st, err := serve.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("window %5.0fµs: batch %4.1f  p50 %7.3fms  p99 %7.3fms  %6.0f req/s  (analytic service %.3fms, executed %.3fms)\n",
			windowUs, st.MeanBatch, 1e3*st.P50Sec, 1e3*st.P99Sec, st.ThroughputRPS,
			1e3*st.Prediction.ServiceSec, 1e3*st.MeanServiceSec)
	}

	// 5. Knob 2 — the embedding cache, under ~3x overload: hits skip the
	//    whole sample→propagate pipeline, so capacity grows with hit rate
	//    and admission control sheds less load.
	probe, err := serve.Predict(base, 1)
	if err != nil {
		log.Fatal(err)
	}
	overload := 3 * probe.CapacityRPS
	fmt.Printf("\n--- cache sweep (no window, %.0f req/s offered ≈ 3x capacity) ---\n", overload)
	for _, cacheSize := range []int{0, 256, 4096} {
		cfg := base
		cfg.RatePerSec = overload
		cfg.WindowSec = 0
		cfg.CacheSize = cacheSize
		st, err := serve.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cache %5d: hit %3.0f%%  rejected %5d  p99 %8.3fms  %6.0f req/s\n",
			cacheSize, 100*st.HitRate, st.Rejected, 1e3*st.P99Sec, st.ThroughputRPS)
	}

	// 6. The full report for one operating point.
	fmt.Println("\n--- full report (window 500µs, cache 4096) ---")
	cfg := base
	cfg.CacheSize = 4096
	st, err := serve.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(st)
}
