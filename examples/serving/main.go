// Serving walkthrough: train a GraphSAGE model with the hybrid runtime,
// then put it behind the online-serving subsystem — request queue with
// admission control, dynamic batcher, LRU embedding cache, and an
// accelerator worker pool — and watch how the two serving knobs move the
// latency/throughput trade-off:
//
//   - the batch window trades median latency for batching efficiency;
//   - the embedding cache trades memory for overload headroom;
//   - and how the kind-aware routed fleet (CPU peer + GPU + FPGA, each
//     worker bound to its device like training's Trainer backends) beats
//     both homogeneous pools at an equal device budget;
//   - finally, a multi-cohort SLO workload (interactive + bulk clients,
//     distinct arrival processes and popularity skew) recorded to a trace
//     and replayed under each batch-formation policy, so the per-class
//     tails are compared on the identical offered load.
//
// Every run also prints the analytic serving model's prediction next to the
// executed virtual-clock numbers.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fault"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// heteroFleet builds a mixed platform or dies.
func heteroFleet(kinds ...hw.Kind) hw.Platform {
	p, err := hw.HeteroPlatform(kinds...)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	// 1. A synthetic products-shaped graph, small enough to serve in a demo.
	spec := datagen.Spec{
		Name: "serving-demo", NumVertices: 5000, NumEdges: 40000,
		FeatDims: []int{64, 48, 8}, TrainNodes: 2500,
	}
	ds, err := datagen.Materialize(spec, 0.5, tensor.NewRNG(42))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train briefly so the served predictions mean something.
	engine, err := core.NewEngine(core.Config{
		Plat: hw.CPUFPGAPlatform(), Data: ds,
		Model: gnn.Config{Kind: gnn.SAGE, Dims: spec.FeatDims},
		LR:    0.3, BatchSize: 128, Fanouts: []int{10, 5},
		Hybrid: true, TFP: true, DRM: true, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Training 3 epochs...")
	for ep := 0; ep < 3; ep++ {
		st, err := engine.RunEpoch()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  epoch %d: loss %.3f acc %.3f\n", st.Epoch, st.Loss, st.Accuracy)
	}
	model := &gnn.Model{
		Cfg:    gnn.Config{Kind: gnn.SAGE, Dims: spec.FeatDims},
		Params: engine.Params(),
	}

	// 3. A common serving configuration: 20k requests, Zipf-popular
	//    vertices, two accelerator workers.
	base := serve.Config{
		Plat: hw.CPUFPGAPlatform(), Data: ds, Model: model,
		Fanouts: []int{10, 5}, NumRequests: 10000, RatePerSec: 4000,
		ZipfExponent: 1.1, MaxBatch: 32, WindowSec: 0.5e-3, Workers: 2,
		QueueCap: 1024, CacheSize: 0, Seed: 7,
	}

	// 4. Knob 1 — the batch window: wider windows form bigger batches
	//    (higher capacity) but every request waits longer for its batch.
	fmt.Println("\n--- batch window sweep (no cache, moderate load) ---")
	for _, windowUs := range []float64{0, 500, 2000} {
		cfg := base
		cfg.WindowSec = windowUs * 1e-6
		st, err := serve.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("window %5.0fµs: batch %4.1f  p50 %7.3fms  p99 %7.3fms  %6.0f req/s  (analytic service %.3fms, executed %.3fms)\n",
			windowUs, st.MeanBatch, 1e3*st.P50Sec, 1e3*st.P99Sec, st.ThroughputRPS,
			1e3*st.Prediction.ServiceSec, 1e3*st.MeanServiceSec)
	}

	// 5. Knob 2 — the embedding cache, under ~3x overload: hits skip the
	//    whole sample→propagate pipeline, so capacity grows with hit rate
	//    and admission control sheds less load.
	probe, err := serve.Predict(base, 1)
	if err != nil {
		log.Fatal(err)
	}
	overload := 3 * probe.CapacityRPS
	fmt.Printf("\n--- cache sweep (no window, %.0f req/s offered ≈ 3x capacity) ---\n", overload)
	for _, cacheSize := range []int{0, 256, 4096} {
		cfg := base
		cfg.RatePerSec = overload
		cfg.WindowSec = 0
		cfg.CacheSize = cacheSize
		st, err := serve.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cache %5d: hit %3.0f%%  rejected %5d  p99 %8.3fms  %6.0f req/s\n",
			cacheSize, 100*st.HitRate, st.Rejected, 1e3*st.P99Sec, st.ThroughputRPS)
	}

	// 6. The full report for one operating point.
	fmt.Println("\n--- full report (window 500µs, cache 4096) ---")
	cfg := base
	cfg.CacheSize = 4096
	st, err := serve.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(st)

	// 7. Kind-aware heterogeneous serving: at an equal 3-device budget, the
	//    routed CPU+GPU+FPGA fleet against both homogeneous pools. Each
	//    worker binds one device; the router sends every closed batch to the
	//    earliest predicted completion, cache-hot small batches split off to
	//    the CPU peer, and per-kind admission shares keep a slow kind from
	//    starving the rest. The FPGA worker executes the §IV-C dataflow
	//    kernels and charges its measured cycles.
	fmt.Println("\n--- kind-aware routed fleet (equal 3-device budget, ~overload) ---")
	mixed := base
	mixed.Plat = heteroFleet(hw.GPU, hw.FPGA)
	mixed.Workers = 2
	mixed.CPUPeer = true
	mixed.SmallBatchCut = 4
	mixed.CacheSize = 2048
	// Anchor on the size-closed capacity (cold cache, full batches).
	probeCfg := mixed
	probeCfg.RatePerSec = 1e6
	probe, err = serve.Predict(probeCfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	rate := 1.2 * probe.CapacityRPS
	for _, fl := range []struct {
		name string
		cfg  serve.Config
	}{
		{"3xGPU", func() serve.Config {
			c := base
			c.Plat = heteroFleet(hw.GPU, hw.GPU, hw.GPU)
			c.Workers, c.CacheSize = 3, 2048
			return c
		}()},
		{"3xFPGA", func() serve.Config {
			c := base
			c.Plat = heteroFleet(hw.FPGA, hw.FPGA, hw.FPGA)
			c.Workers, c.CacheSize = 3, 2048
			return c
		}()},
		{"CPU+GPU+FPGA", mixed},
	} {
		c := fl.cfg
		c.RatePerSec = rate
		st, err := serve.Run(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s mean %7.3fms  p99 %8.3fms  %6.0f req/s  split",
			fl.name, 1e3*st.MeanSec, 1e3*st.P99Sec, st.ThroughputRPS)
		for _, d := range st.PerDevice {
			fmt.Printf("  %s:%d", d.Kind, d.Batches)
		}
		fmt.Println()
	}

	// 8. SLO classes: two cohorts — latency-sensitive interactive web
	//    traffic with a bursty two-phase envelope, and a smooth background
	//    bulk feed with heavier-than-Poisson gaps (Weibull shape < 1). The
	//    stream is generated once, recorded as a trace, and replayed under
	//    each formation policy, so every policy answers the same arrivals
	//    and the per-class p99s are directly comparable. Priority-FCFS
	//    shortens the batch window for interactive members; SJF deducts
	//    predicted service time.
	fmt.Println("\n--- SLO-class workload, one trace replayed per formation policy ---")
	slo := base
	slo.CacheSize = 2048
	slo.Workload = &serve.WorkloadSpec{Cohorts: []serve.Cohort{
		{Name: "web", Class: serve.ClassInteractive, Dist: serve.DistPoisson,
			RatePerSec: 3000, Zipf: 1.1,
			Phases: []serve.RatePhase{{DurationSec: 0.1, Mult: 2}, {DurationSec: 0.1, Mult: 0.5}}},
		{Name: "etl", Class: serve.ClassBulk, Dist: serve.DistWeibull, Shape: 0.7,
			RatePerSec: 1500, Zipf: 0.8},
	}}
	trace, err := serve.GenerateTrace(slo)
	if err != nil {
		log.Fatal(err)
	}
	for _, formation := range []string{serve.FormationFCFS, serve.FormationPriority, serve.FormationSJF} {
		cfg := slo
		cfg.Workload = nil
		cfg.Replay = trace // identical arrivals under every policy
		cfg.Formation = formation
		st, err := serve.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		web := st.PerClass[serve.ClassInteractive]
		etl := st.PerClass[serve.ClassBulk]
		fmt.Printf("%-9s interactive p99 %7.3fms (served %d)   bulk p99 %7.3fms (served %d)   Jain %.4f\n",
			formation, 1e3*web.P99Sec, web.Served, 1e3*etl.P99Sec, etl.Served, st.JainFairness)
	}

	// 9. Failure drill: the same recorded trace replayed healthy and with a
	//    scripted fault — worker 1 brakes for 10ms, then fail-stops halfway
	//    through the run. The router stops choosing it, in-flight batches
	//    whose predicted completion crosses the fail time are re-dispatched
	//    under the retry budget, and degraded-mode admission sheds bulk
	//    traffic first (interactive is never shed). The fault schedule is
	//    deterministic: the same spec replays bit-exactly.
	fmt.Println("\n--- failure drill: scripted worker loss on the same trace ---")
	sched, err := fault.Parse("stall,worker=1,from=1.0,to=1.01;fail,worker=1,at=1.01")
	if err != nil {
		log.Fatal(err)
	}
	targets, err := serve.ParseSLOTargets("interactive=2,bulk=50")
	if err != nil {
		log.Fatal(err)
	}
	for _, drill := range []struct {
		name   string
		faults *fault.Schedule
	}{
		{"healthy", nil},
		{"worker-loss", sched},
	} {
		cfg := slo
		cfg.Workload = nil
		cfg.Replay = trace
		cfg.Faults = drill.faults
		cfg.RetryBudget = 2
		cfg.SLOTargets = targets
		st, err := serve.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s served %5d  shed %4d  retries %d  deadline misses %3d  p99 %7.3fms",
			drill.name, st.Served, st.Shed, st.Retries, st.DeadlineMisses, 1e3*st.P99Sec)
		if st.FailedWorkers > 0 {
			fmt.Printf("  (lost %d worker, recovery %.3fms)", st.FailedWorkers, 1e3*st.RecoverySec)
		}
		fmt.Println()
	}
}
