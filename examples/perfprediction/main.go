// Performance-prediction demo: the paper's §V model as a design-space
// exploration tool. Before buying hardware, predict how many FPGAs a
// workload can use: sweep the accelerator count, print predicted epoch time,
// throughput, and the stage that bottlenecks each configuration — then
// validate one point against the (overhead-charging) pipeline simulator,
// reproducing the Fig. 8 predicted-vs-actual comparison.
//
//	go run ./examples/perfprediction
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/pipesim"
)

func bottleneckName(st perfmodel.StageTimes) string {
	names := map[string]float64{
		"CPU-sampler": st.SampCPU, "accel-sampler": st.SampAccel,
		"feature-loader": st.Load, "PCIe-transfer": st.Trans,
		"CPU-trainer": st.TrainCPU, "accel-trainer": st.TrainAcc + st.Sync,
	}
	worstN, worstV := "", math.Inf(-1)
	for n, v := range names {
		if v > worstV {
			worstN, worstV = n, v
		}
	}
	return worstN
}

func main() {
	work := perfmodel.DefaultWorkload(datagen.OGBNPapers100M, gnn.SAGE)
	fmt.Println("ogbn-papers100M / GraphSAGE on 2xEPYC7763 + n x U250")
	fmt.Printf("%-6s %-14s %-10s %-15s\n", "FPGAs", "epoch (pred)", "MTEPS", "bottleneck")
	for _, n := range []int{1, 2, 4, 8, 12, 16} {
		plat := hw.CPUFPGAPlatform().WithAccelCount(n)
		m, err := perfmodel.New(plat, work)
		if err != nil {
			log.Fatal(err)
		}
		a := m.InitialAssignment(true)
		fmt.Printf("%-6d %-14s %-10.0f %-15s\n", n,
			fmt.Sprintf("%.3fs", m.EpochTime(a)), m.ThroughputMTEPS(a),
			bottleneckName(m.Stages(a)))
	}

	fmt.Println("\nvalidating the 4-FPGA point against the pipeline simulator (Fig. 8):")
	plat := hw.CPUFPGAPlatform()
	m, err := perfmodel.New(plat, work)
	if err != nil {
		log.Fatal(err)
	}
	predicted := m.EpochTime(m.InitialAssignment(true))
	res, err := pipesim.Run(pipesim.Config{
		Model: m, Mode: pipesim.Mode{Hybrid: true, TFP: true}, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	errPct := math.Abs(res.EpochSec-predicted) / res.EpochSec * 100
	fmt.Printf("predicted %.3fs, simulated %.3fs, model error %.1f%% (paper reports 5-14%%)\n",
		predicted, res.EpochSec, errPct)
}
