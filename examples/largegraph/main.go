// Large-graph scenario: the paper's headline use case. ogbn-papers100M and
// MAG240M do not fit any accelerator's device memory (57 GB and ~368 GB of
// float32 features), so HyScale-GNN keeps the graph in CPU DRAM and streams
// mini-batches to the accelerators with two-stage prefetching.
//
// This example runs the full-scale *timing* path (performance model +
// pipeline simulator — nothing is materialised) for all three paper
// datasets on both heterogeneous platforms, and then trains a 1/20,000-scale
// papers100M-shaped instance for real to show the numeric path converging.
//
//	go run ./examples/largegraph
package main

import (
	"fmt"
	"log"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/drm"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

func main() {
	fmt.Println("--- Full-scale epoch-time projection (virtual, nothing materialised) ---")
	fmt.Printf("%-17s %-10s %-12s %-12s %-12s\n", "dataset", "model", "multi-GPU", "CPU+GPU", "CPU+FPGA")
	for _, spec := range datagen.PaperSpecs() {
		for _, kind := range []gnn.Kind{gnn.GCN, gnn.SAGE} {
			w := perfmodel.DefaultWorkload(spec, kind)
			base, err := baselines.PyGMultiGPU(hw.CPUGPUPlatform(), w, 1)
			if err != nil {
				log.Fatal(err)
			}
			gpu, err := baselines.HyScale(hw.CPUGPUPlatform(), w, perfmodel.TorchProfile(),
				drm.New(128), 1)
			if err != nil {
				log.Fatal(err)
			}
			fpga, err := baselines.HyScale(hw.CPUFPGAPlatform(), w, perfmodel.NativeProfile(),
				drm.New(128), 1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-17s %-10s %-12s %-12s %-12s\n", spec.Name, kind,
				fmt.Sprintf("%.2fs", base),
				fmt.Sprintf("%.2fs (%.1fx)", gpu, base/gpu),
				fmt.Sprintf("%.2fs (%.1fx)", fpga, base/fpga))
		}
	}

	fmt.Println("\n--- Real training on a 1/20,000-scale papers100M-shaped instance ---")
	scaled := datagen.OGBNPapers100M.Scaled(20000)
	ds, err := datagen.Materialize(scaled, 0.25, tensor.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialised %s: %d vertices, %d edges, f=%v\n",
		scaled.Name, scaled.NumVertices, scaled.NumEdges, scaled.FeatDims)
	coreCfg := core.Config{
		Plat:      hw.CPUFPGAPlatform(),
		Data:      ds,
		Model:     gnn.Config{Kind: gnn.SAGE, Dims: scaled.FeatDims},
		LR:        0.2,
		BatchSize: 256,
		Fanouts:   []int{25, 10},
		Hybrid:    true, TFP: true, DRM: true,
		Seed: 7,
	}
	engine, err := core.NewEngine(coreCfg)
	if err != nil {
		log.Fatal(err)
	}
	var singlePerIter float64
	for ep := 0; ep < 5; ep++ {
		st, err := engine.RunEpoch()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: loss %.4f acc %.3f virtual %.4fs (%.0f MTEPS)\n",
			st.Epoch, st.Loss, st.Accuracy, st.VirtualSec, st.MTEPS)
		singlePerIter = st.VirtualSec / float64(st.Iterations)
	}

	// The §VIII extension, executed: the same instance sharded across 4
	// nodes over 100 GbE — real gradients through the ring all-reduce,
	// remote-feature and all-reduce time on every node's virtual clock —
	// validated against the analytic cluster model's prediction.
	fmt.Println("\n--- Executed multi-node training (4 shards over 100GbE) ---")
	m, err := cluster.NewMultiNode(cluster.MultiNodeConfig{
		Nodes: 4, Net: hw.Ethernet100G(), Node: coreCfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned: edge cut %.2f, %d train vertices/node\n",
		m.EdgeCut(), m.TrainPerNode())
	var last *cluster.MultiNodeStats
	for ep := 0; ep < 5; ep++ {
		st, err := m.RunEpoch()
		if err != nil {
			log.Fatal(err)
		}
		last = st
		fmt.Printf("epoch %d: loss %.4f acc %.3f virtual %.4fs (net fetch %.4fs, all-reduce %.4fs)\n",
			st.Epoch, st.Loss, st.Accuracy, st.VirtualSec, st.NetFetchSec, st.NetSyncSec)
	}
	if d := m.ReplicasInSync(); d != 0 {
		log.Fatalf("fleet divergence %g", d)
	}
	fmt.Println("fleet consistency: all 4 shards hold identical weights")
	pred, err := cluster.EpochTime(m.Analytic())
	if err != nil {
		log.Fatal(err)
	}
	execSlow := (last.VirtualSec / float64(last.Iterations)) / singlePerIter
	fmt.Printf("erosion per iteration: executed %.3fx, analytic prediction %.3fx\n",
		execSlow, cluster.PredictedSlowdown(pred, singlePerIter))
}
