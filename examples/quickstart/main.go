// Quickstart: train a 2-layer GraphSAGE model with the HyScale-GNN hybrid
// runtime on a small synthetic graph, and watch the loss fall.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/tensor"
)

func main() {
	// 1. A synthetic power-law graph with planted class structure:
	//    5,000 vertices, 40,000 edges, 32-dim features, 8 classes.
	spec := datagen.Spec{
		Name: "quickstart", NumVertices: 5000, NumEdges: 40000,
		FeatDims: []int{32, 32, 8}, TrainNodes: 2500,
	}
	ds, err := datagen.Materialize(spec, 0.5, tensor.NewRNG(42))
	if err != nil {
		log.Fatal(err)
	}

	// 2. The hybrid runtime on the paper's CPU-FPGA platform model:
	//    dual EPYC 7763 + 4 simulated Alveo U250s, with every optimization
	//    on (hybrid training, two-stage prefetching, DRM).
	engine, err := core.NewEngine(core.Config{
		Plat:      hw.CPUFPGAPlatform(),
		Data:      ds,
		Model:     gnn.Config{Kind: gnn.SAGE, Dims: spec.FeatDims},
		LR:        0.3,
		BatchSize: 128,
		Fanouts:   []int{10, 5},
		Hybrid:    true,
		TFP:       true,
		DRM:       true,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train.
	fmt.Println("epoch  loss    accuracy  virtual-epoch  MTEPS")
	for ep := 0; ep < 6; ep++ {
		st, err := engine.RunEpoch()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-7.4f %-9.3f %-14s %.1f\n",
			st.Epoch, st.Loss, st.Accuracy, fmt.Sprintf("%.4fs", st.VirtualSec), st.MTEPS)
	}

	// 4. The synchronous-SGD invariant: every trainer (CPU + 4 accelerators)
	//    holds identical weights.
	fmt.Printf("\nreplica divergence: %g (0 = lock-step)\n", engine.ReplicasInSync())
	a := engine.Assignment()
	fmt.Printf("task mapping after DRM: CPU=%d targets, accels=%v\n", a.CPUBatch, a.AccelBatch)
}
