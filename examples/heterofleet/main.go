// Heterogeneous fleet demo: the paper's title configuration — CPU + GPU +
// FPGA trainers on one node — executed for real. A mixed fleet trains a
// scaled ogbn-products instance with the FPGA share running through the
// §IV-C dataflow kernels (scatter-gather + systolic), then the analytic
// fleet ablation shows why the hybrid mix beats every homogeneous fleet of
// the same device budget.
//
//	go run ./examples/heterofleet
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/tensor"
)

func main() {
	// --- Part 1: an executed CPU + GPU + FPGA run.
	plat, err := hw.HeteroPlatform(hw.GPU, hw.FPGA)
	if err != nil {
		log.Fatal(err)
	}
	spec := datagen.OGBNProducts.Scaled(2000)
	ds, err := datagen.Materialize(spec, 0.2, tensor.NewRNG(1))
	if err != nil {
		log.Fatal(err)
	}
	engine, err := core.NewEngine(core.Config{
		Plat: plat, Data: ds,
		Model:     gnn.Config{Kind: gnn.SAGE, Dims: spec.FeatDims},
		LR:        0.3,
		BatchSize: 256,
		Fanouts:   []int{25, 10},
		Hybrid:    true, TFP: true, DRM: true,
		Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Executed mixed fleet on %s (%d vertices)\n\n", plat.Name, spec.NumVertices)
	fmt.Printf("%-6s %-9s %-9s %-13s %-22s\n", "epoch", "loss", "accuracy", "virtual-sec", "fpga agg/upd cycles")
	for ep := 0; ep < 4; ep++ {
		st, err := engine.RunEpoch()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-9.4f %-9.3f %-13.4f %d/%d\n",
			st.Epoch, st.Loss, st.Accuracy, st.VirtualSec,
			st.FPGA.AggCycles, st.FPGA.UpdateCycles)
	}
	a := engine.Assignment()
	fmt.Printf("\nDRM-tuned shares: CPU %d, GPU %d, FPGA %d (the mapping follows device throughput)\n",
		a.CPUBatch, a.AccelBatch[0], a.AccelBatch[1])
	if d := engine.ReplicasInSync(); d != 0 {
		log.Fatalf("fleet diverged by %g — synchronous SGD violated", d)
	}
	fmt.Println("All three trainers hold identical weights: the mixed fleet is synchronous SGD.")

	// --- Part 2: the fleet ablation (analytic steady state, full-size spec).
	fmt.Println()
	tbl, err := bench.ExtHetero(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl)
}
