// Package repro's root benchmark suite regenerates every table and figure of
// the paper's evaluation (one Benchmark per artifact — see DESIGN.md's
// per-experiment index) and additionally benchmarks the numeric kernels and
// the end-to-end hybrid runtime on a scaled dataset.
//
// Run everything:  go test -bench=. -benchmem
// One artifact:    go test -bench=BenchmarkFig10
package repro

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// benchExperiment runs one named experiment per iteration and reports the
// headline numbers as custom metrics.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	b.ReportAllocs()
	var tbl *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = bench.ByName(name, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = tbl
}

// BenchmarkTable4 regenerates the FPGA resource-utilization table.
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkFig8 regenerates the predicted-vs-actual epoch-time study.
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates the 1–16 accelerator scalability study.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates the cross-platform comparison.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkTable6 regenerates the state-of-the-art epoch-time comparison.
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkTable7 regenerates the normalized (sec×TFLOPS) comparison.
func BenchmarkTable7(b *testing.B) { benchExperiment(b, "table7") }

// BenchmarkFig11 regenerates the optimization ablation.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkExtMultiNode runs the executed multi-node strong-scaling study:
// 1–4 sharded engines with real ring-all-reduce gradient exchange.
func BenchmarkExtMultiNode(b *testing.B) { benchExperiment(b, "ext-multinode") }

// BenchmarkExtHetero runs the heterogeneous-fleet ablation: hybrid
// CPU+GPU+FPGA against every homogeneous configuration of the same device
// budget, with DRM rebalancing the unequal devices.
func BenchmarkExtHetero(b *testing.B) { benchExperiment(b, "ext-hetero") }

// BenchmarkExtServeHetero runs the kind-aware serving ablation: a routed
// mixed CPU+GPU+FPGA serving pool against both homogeneous pools at an
// equal device budget.
func BenchmarkExtServeHetero(b *testing.B) { benchExperiment(b, "ext-serve-hetero") }

// BenchmarkKernels runs the numeric-core before/after suite (blocked GEMMs
// vs the retained reference kernels, parallel vs serial backward scatter,
// workspace vs allocating step paths) and reports the headline metrics. The
// same suite serializes to BENCH_kernels.json via
// `go run ./cmd/experiments -kernels-json BENCH_kernels.json`.
func BenchmarkKernels(b *testing.B) {
	b.ReportAllocs()
	var report *bench.KernelsReport
	var err error
	for i := 0; i < b.N; i++ {
		report, err = bench.Kernels(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, k := range report.Kernels {
		switch k.Kernel {
		case "MatMul":
			if k.Shape == "1024x128·128x128" {
				b.ReportMetric(k.OptimizedGFLOPS, "matmul-GFLOPS")
				b.ReportMetric(k.Speedup, "matmul-speedup")
			}
		case "AggregateBackward":
			b.ReportMetric(k.Speedup, "scatter-speedup")
		case "TrainStep":
			b.ReportMetric(k.OptimizedAllocs, "trainstep-allocs")
		case "ServingBatch":
			b.ReportMetric(k.OptimizedAllocs, "servebatch-allocs")
		case "Epoch(serial→prefetch)":
			b.ReportMetric(k.OverlapRatio, "epoch-overlap-ratio")
		}
	}
}

// BenchmarkServeThroughput runs the serving data-plane before/after suite
// (legacy single-lock LRU vs the lock-striped sharded cache under
// concurrency, the dispatch memo map→slice change, end-to-end wall-clock
// throughput and allocs/request, per-policy hit/latency/regret profiles)
// and reports the headline metrics. The same suite serializes to
// BENCH_serve.json via `go run ./cmd/experiments -serve-json BENCH_serve.json`.
func BenchmarkServeThroughput(b *testing.B) {
	b.ReportAllocs()
	var report *bench.ServeReport
	var err error
	for i := 0; i < b.N; i++ {
		report, err = bench.ServeThroughput(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range report.Cache {
		if r.Cache == "sharded" && r.Shards == 4 && !r.Batched {
			b.ReportMetric(r.SpeedupVsLegacy, "cache4-speedup")
		}
	}
	b.ReportMetric(report.E2EWallRPS, "e2e-wall-rps")
	b.ReportMetric(report.AllocsPerRequestAfter, "allocs/request")
	b.ReportMetric(report.AffinityHitDelta, "affinity-hit-delta")
}

// BenchmarkExtServeSLO runs the SLO-class workload comparison: a recorded
// three-cohort trace (Poisson/Gamma/Weibull arrivals, diurnal envelope,
// per-class SLOs) replayed under every batch-formation policy, reporting the
// per-formation fairness and the interactive-tail delta.
func BenchmarkExtServeSLO(b *testing.B) {
	b.ReportAllocs()
	var report *bench.ServeSLOReport
	var err error
	for i := 0; i < b.N; i++ {
		report, err = bench.ServeSLO(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(report.InteractiveP99DeltaMs, "interactive-p99-delta-ms")
	b.ReportMetric(report.Jain["fcfs"], "jain-fcfs")
	b.ReportMetric(report.Jain["priority"], "jain-priority")
}

// BenchmarkExtServeFault replays one recorded trace fault-free and with a
// scripted mid-run worker fail-stop, reporting what the self-healing runtime
// shed and retried, the fault-window tail, and the recovery time.
func BenchmarkExtServeFault(b *testing.B) {
	b.ReportAllocs()
	var report *bench.ServeFaultReport
	var err error
	for i := 0; i < b.N; i++ {
		report, err = bench.ServeFault(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(report.Faulted.Shed), "faulted-shed")
	b.ReportMetric(float64(report.Faulted.Retries), "faulted-retries")
	b.ReportMetric(report.Faulted.FaultWindowP99Ms, "fault-window-p99-ms")
	b.ReportMetric(report.Faulted.RecoveryMs, "recovery-ms")
}

// --- Kernel-level benchmarks ------------------------------------------------

func benchDataset(b *testing.B) *datagen.Dataset {
	b.Helper()
	spec := datagen.Spec{Name: "bench", NumVertices: 20000, NumEdges: 200000,
		FeatDims: []int{64, 64, 16}, TrainNodes: 8000}
	ds, err := datagen.Materialize(spec, 0.4, tensor.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// BenchmarkNeighborSampling measures the mini-batch sampler (fanouts 25,10).
func BenchmarkNeighborSampling(b *testing.B) {
	ds := benchDataset(b)
	s, err := sampler.New(ds.Graph, []int{25, 10}, ds.Labels)
	if err != nil {
		b.Fatal(err)
	}
	rng := tensor.NewRNG(2)
	targets := ds.TrainIdx[:1024]
	b.ReportAllocs()
	b.ResetTimer()
	var edges int64
	for i := 0; i < b.N; i++ {
		mb, err := s.Sample(targets, rng)
		if err != nil {
			b.Fatal(err)
		}
		edges += mb.EdgesTraversed()
	}
	b.ReportMetric(float64(edges)/float64(b.N), "edges/batch")
}

// BenchmarkTrainStep measures one full forward+backward per model kind.
func BenchmarkTrainStep(b *testing.B) {
	for _, kind := range []gnn.Kind{gnn.GCN, gnn.SAGE} {
		b.Run(kind.String(), func(b *testing.B) {
			ds := benchDataset(b)
			s, _ := sampler.New(ds.Graph, []int{10, 10}, ds.Labels)
			rng := tensor.NewRNG(3)
			mb, err := s.Sample(ds.TrainIdx[:256], rng)
			if err != nil {
				b.Fatal(err)
			}
			x := tensor.New(len(mb.InputNodes()), 64)
			tensor.GatherRows(x, ds.Features, mb.InputNodes())
			m, _ := gnn.NewModel(gnn.Config{Kind: kind, Dims: []int{64, 64, 16}}, rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := m.TrainStep(mb, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernelTraffic contrasts the scatter-gather kernel on sorted vs
// unsorted edges — the §IV-C O(|E|)→O(|V0|) traffic claim as a benchmark.
func BenchmarkKernelTraffic(b *testing.B) {
	rng := tensor.NewRNG(4)
	const nSrc, nDst, nEdges, f = 4096, 1024, 65536, 64
	features := tensor.New(nSrc, f)
	tensor.NormalInit(features, 1, rng)
	edges := make([]graph.Edge, nEdges)
	for i := range edges {
		edges[i] = graph.Edge{Src: int32(rng.Intn(nSrc)), Dst: int32(rng.Intn(nDst))}
	}
	cfg := accel.ScatterGatherConfig{NumPEs: 8, FeatWidth: f, BytesPerCycle: 64, FetchLatency: 32}
	for _, sorted := range []bool{false, true} {
		name := "unsorted"
		in := edges
		if sorted {
			name = "sorted"
			in = graph.SortEdgesBySource(edges)
		}
		b.Run(name, func(b *testing.B) {
			out := tensor.New(nDst, f)
			b.ReportAllocs()
			var fetches, cycles int64
			for i := 0; i < b.N; i++ {
				out.Zero()
				res, err := accel.RunScatterGather(cfg, in, nil, features, out)
				if err != nil {
					b.Fatal(err)
				}
				fetches += int64(res.FeatureFetches)
				cycles += res.Cycles
			}
			b.ReportMetric(float64(fetches)/float64(b.N), "fetches/op")
			b.ReportMetric(float64(cycles)/float64(b.N), "cycles/op")
		})
	}
}

// BenchmarkHybridEpoch measures the full hybrid runtime (real numerics +
// virtual clock) on a scaled products-shaped dataset.
func BenchmarkHybridEpoch(b *testing.B) {
	ds := benchDataset(b)
	plat := hw.CPUFPGAPlatform()
	engine, err := core.NewEngine(core.Config{
		Plat: plat, Data: ds,
		Model:     gnn.Config{Kind: gnn.SAGE, Dims: []int{64, 64, 16}},
		LR:        0.1,
		BatchSize: 256,
		Fanouts:   []int{10, 5},
		Hybrid:    true, TFP: true, DRM: true,
		Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var virtual float64
	for i := 0; i < b.N; i++ {
		st, err := engine.RunEpoch()
		if err != nil {
			b.Fatal(err)
		}
		virtual += st.VirtualSec
	}
	b.ReportMetric(virtual/float64(b.N), "virtual-sec/epoch")
}

// BenchmarkSaintSampling measures GraphSAINT random-walk subgraph sampling.
func BenchmarkSaintSampling(b *testing.B) {
	ds := benchDataset(b)
	s, err := sampler.NewSaint(ds.Graph, 512, 3, 2, ds.Labels)
	if err != nil {
		b.Fatal(err)
	}
	rng := tensor.NewRNG(7)
	b.ReportAllocs()
	b.ResetTimer()
	var nodes int
	for i := 0; i < b.N; i++ {
		mb, err := s.Sample(rng)
		if err != nil {
			b.Fatal(err)
		}
		nodes += len(mb.Targets)
	}
	b.ReportMetric(float64(nodes)/float64(b.N), "subgraph-nodes")
}

// BenchmarkBackendForward measures the full hardware-dataflow forward pass
// (scatter-gather + systolic simulators) against the reference path.
func BenchmarkBackendForward(b *testing.B) {
	ds := benchDataset(b)
	s, _ := sampler.New(ds.Graph, []int{10, 10}, ds.Labels)
	rng := tensor.NewRNG(8)
	mb, err := s.Sample(ds.TrainIdx[:256], rng)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(len(mb.InputNodes()), 64)
	tensor.GatherRows(x, ds.Features, mb.InputNodes())
	m, _ := gnn.NewModel(gnn.Config{Kind: gnn.GCN, Dims: []int{64, 64, 16}}, rng)
	bk := accel.U250Backend(64)
	b.ReportAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		_, stats, err := bk.Forward(m, mb, x)
		if err != nil {
			b.Fatal(err)
		}
		cycles += stats.AggCycles + stats.UpdateCycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "device-cycles")
}

// BenchmarkQuantizeRoundTrip measures int8 feature quantization (the §VIII
// PCIe extension's per-batch cost).
func BenchmarkQuantizeRoundTrip(b *testing.B) {
	rng := tensor.NewRNG(9)
	m := tensor.New(4096, 128)
	tensor.NormalInit(m, 1, rng)
	b.ReportAllocs()
	b.SetBytes(int64(len(m.Data)) * 4)
	for i := 0; i < b.N; i++ {
		tensor.QuantizeRoundTrip(m)
	}
}

// BenchmarkMatMulKernel measures the parallel GEMM at a GNN-typical shape
// (|V1|×f0 · f0×f1).
func BenchmarkMatMulKernel(b *testing.B) {
	rng := tensor.NewRNG(6)
	a := tensor.New(2048, 128)
	tensor.NormalInit(a, 1, rng)
	w := tensor.New(128, 256)
	tensor.NormalInit(w, 1, rng)
	out := tensor.New(2048, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(out, a, w)
	}
	flops := 2.0 * 2048 * 128 * 256
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}
