// Command hyscale trains a GNN with the HyScale-GNN hybrid runtime on a
// synthetic dataset shaped like one of the paper's benchmarks, scaled down
// to fit in memory. It reports per-epoch loss, accuracy, virtual-clock epoch
// time and throughput, and the task mapping the DRM engine converged to.
//
// With -nodes N > 1 it executes the multi-node extension (paper §VIII
// future work): the graph is partitioned across N sharded engine replicas
// (each with its own DRM instance) that exchange real gradients through a
// ring all-reduce, with remote-feature and all-reduce time charged on the
// virtual clock; the run ends by comparing the executed slowdown against
// the analytic cluster model's prediction.
//
// Usage:
//
//	hyscale -dataset ogbn-products -model sage -platform cpu-fpga \
//	        -scale 2000 -epochs 5 -batch 256 [-nodes 4]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/tensor"
	"repro/internal/trace"
)

func main() {
	dataset := flag.String("dataset", "ogbn-products", "dataset spec: ogbn-products | ogbn-papers100M | MAG240M(homo)")
	modelName := flag.String("model", "sage", "model: gcn | sage")
	platform := flag.String("platform", "cpu-fpga", "platform: cpu-gpu | cpu-fpga")
	scale := flag.Int64("scale", 2000, "dataset scale-down factor (graph is synthetic RMAT)")
	epochs := flag.Int("epochs", 5, "epochs to train")
	batch := flag.Int("batch", 256, "per-trainer mini-batch size")
	lr := flag.Float64("lr", 0.3, "learning rate")
	seed := flag.Uint64("seed", 1, "random seed")
	noHybrid := flag.Bool("no-hybrid", false, "disable hybrid CPU training")
	noTFP := flag.Bool("no-tfp", false, "disable two-stage feature prefetching")
	noDRM := flag.Bool("no-drm", false, "disable dynamic resource management")
	quantize := flag.Bool("quantize", false, "int8-quantize features on the PCIe link (§VIII extension)")
	saint := flag.Bool("saint", false, "use GraphSAINT random-walk sampling instead of neighbor sampling")
	nodes := flag.Int("nodes", 1, "execute a multi-node run with this many partitioned shards")
	traceOut := flag.String("trace", "", "write per-epoch CSV telemetry to this file")
	flag.Parse()

	if err := run(*dataset, *modelName, *platform, *scale, *epochs, *batch,
		float32(*lr), *seed, !*noHybrid, !*noTFP, !*noDRM, *quantize, *saint, *nodes, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "hyscale:", err)
		os.Exit(1)
	}
}

func run(dataset, modelName, platform string, scale int64, epochs, batch int,
	lr float32, seed uint64, hybrid, tfp, drmOn, quantize, saint bool, nodes int, traceOut string) error {
	spec, err := datagen.SpecByName(dataset)
	if err != nil {
		return err
	}
	scaled := spec.Scaled(scale)
	var kind gnn.Kind
	switch strings.ToLower(modelName) {
	case "gcn":
		kind = gnn.GCN
	case "sage", "graphsage":
		kind = gnn.SAGE
	default:
		return fmt.Errorf("unknown model %q", modelName)
	}
	var plat hw.Platform
	switch platform {
	case "cpu-gpu":
		plat = hw.CPUGPUPlatform()
	case "cpu-fpga":
		plat = hw.CPUFPGAPlatform()
	default:
		return fmt.Errorf("unknown platform %q", platform)
	}

	fmt.Printf("Materializing %s (scaled 1/%d: %d vertices, %d edges, f=%v)...\n",
		spec.Name, scale, scaled.NumVertices, scaled.NumEdges, scaled.FeatDims)
	ds, err := datagen.Materialize(scaled, 0.2, tensor.NewRNG(seed))
	if err != nil {
		return err
	}
	coreCfg := core.Config{
		Plat:             plat,
		Data:             ds,
		Model:            gnn.Config{Kind: kind, Dims: scaled.FeatDims},
		LR:               lr,
		BatchSize:        batch,
		Fanouts:          []int{25, 10},
		Hybrid:           hybrid,
		TFP:              tfp,
		DRM:              drmOn,
		QuantizeTransfer: quantize,
		UseSaint:         saint,
		Seed:             seed,
	}
	if nodes < 1 {
		return fmt.Errorf("-nodes %d: need at least 1", nodes)
	}
	if nodes > 1 {
		if epochs < 1 {
			return fmt.Errorf("-epochs %d: multi-node needs at least 1", epochs)
		}
		return runMultiNode(coreCfg, nodes, epochs, traceOut)
	}
	engine, err := core.NewEngine(coreCfg)
	if err != nil {
		return err
	}
	fmt.Printf("Training %s on %s (hybrid=%v tfp=%v drm=%v quantize=%v saint=%v)\n\n",
		kind, plat.Name, hybrid, tfp, drmOn, quantize, saint)
	var rec trace.Recorder
	fmt.Printf("%-6s %-10s %-10s %-14s %-10s\n", "epoch", "loss", "accuracy", "virtual-epoch", "MTEPS")
	for ep := 0; ep < epochs; ep++ {
		st, err := engine.RunEpoch()
		if err != nil {
			return err
		}
		fmt.Printf("%-6d %-10.4f %-10.3f %-14s %-10.1f\n",
			st.Epoch, st.Loss, st.Accuracy, fmt.Sprintf("%.4fs", st.VirtualSec), st.MTEPS)
		accelShare := 0
		if len(st.Assignment.AccelBatch) > 0 {
			accelShare = st.Assignment.AccelBatch[0]
		}
		rec.RecordEpoch(trace.EpochSample{
			Epoch: st.Epoch, Loss: st.Loss, Accuracy: st.Accuracy,
			VirtualSec: st.VirtualSec, MTEPS: st.MTEPS,
			CPUBatch: st.Assignment.CPUBatch, AccelBatch: accelShare,
		})
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteEpochsCSV(f); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", traceOut)
	}
	a := engine.Assignment()
	fmt.Printf("\nFinal task mapping: CPU batch %d, accel batches %v\n", a.CPUBatch, a.AccelBatch)
	fmt.Printf("CPU threads: sampler %d, loader %d, trainer %d\n",
		a.SampThreads, a.LoadThreads, a.TrainThreads)
	if d := engine.ReplicasInSync(); d > 1e-6 {
		return fmt.Errorf("replica divergence %g — synchronous SGD violated", d)
	}
	fmt.Println("Replica consistency check: all trainers hold identical weights.")
	return nil
}

// runMultiNode executes the sharded multi-node protocol and closes with the
// executed-vs-analytic slowdown comparison.
func runMultiNode(coreCfg core.Config, nodes, epochs int, traceOut string) error {
	// Single-node baseline (one fill epoch + one steady-state epoch) for the
	// slowdown comparison.
	base, err := core.NewEngine(coreCfg)
	if err != nil {
		return err
	}
	var basePerIter float64
	for i := 0; i < 2; i++ {
		st, err := base.RunEpoch()
		if err != nil {
			return err
		}
		basePerIter = st.VirtualSec / float64(st.Iterations)
	}

	net := hw.Ethernet100G()
	m, err := cluster.NewMultiNode(cluster.MultiNodeConfig{
		Nodes: nodes, Net: net, Node: coreCfg,
	})
	if err != nil {
		return err
	}
	fmt.Printf("Training on %d nodes over %s (edge cut %.2f, balance %.2f, %d train vertices/node)\n\n",
		nodes, net.Name, m.EdgeCut(), m.Partition().Balance(), m.TrainPerNode())
	fmt.Printf("%-6s %-10s %-10s %-14s %-10s %-12s %-12s\n",
		"epoch", "loss", "accuracy", "virtual-epoch", "MTEPS", "net-fetch", "net-sync")
	var rec trace.Recorder
	var last *cluster.MultiNodeStats
	for ep := 0; ep < epochs; ep++ {
		st, err := m.RunEpoch()
		if err != nil {
			return err
		}
		last = st
		fmt.Printf("%-6d %-10.4f %-10.3f %-14s %-10.1f %-12s %-12s\n",
			st.Epoch, st.Loss, st.Accuracy, fmt.Sprintf("%.4fs", st.VirtualSec),
			st.MTEPS, fmt.Sprintf("%.4fs", st.NetFetchSec), fmt.Sprintf("%.4fs", st.NetSyncSec))
		a := m.Node(0).Assignment()
		accelShare := 0
		if len(a.AccelBatch) > 0 {
			accelShare = a.AccelBatch[0]
		}
		rec.RecordEpoch(trace.EpochSample{
			Epoch: st.Epoch, Loss: st.Loss, Accuracy: st.Accuracy,
			VirtualSec: st.VirtualSec, MTEPS: st.MTEPS,
			CPUBatch: a.CPUBatch, AccelBatch: accelShare,
		})
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteEpochsCSV(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", traceOut)
	}
	for i := 0; i < nodes; i++ {
		a := m.Node(i).Assignment()
		fmt.Printf("\nnode %d task mapping: CPU batch %d, accel batches %v (threads %d/%d/%d)",
			i, a.CPUBatch, a.AccelBatch, a.SampThreads, a.LoadThreads, a.TrainThreads)
	}
	fmt.Println()
	if d := m.ReplicasInSync(); d != 0 {
		return fmt.Errorf("fleet divergence %g — cross-node synchronous SGD violated", d)
	}
	fmt.Println("Fleet consistency check: all shards hold identical weights after the ring all-reduce.")

	execSlow := (last.VirtualSec / float64(last.Iterations)) / basePerIter
	pred, err := cluster.EpochTime(m.Analytic())
	if err != nil {
		return err
	}
	predSlow := cluster.PredictedSlowdown(pred, basePerIter)
	fmt.Printf("\nMulti-node erosion: executed %.3fx slower per iteration; analytic model predicts %.3fx\n",
		execSlow, predSlow)
	fmt.Printf("  per-iteration network: fetch %.3gs executed / %.3gs analytic, all-reduce %.3gs / %.3gs\n",
		last.NetFetchSec/float64(last.Iterations), pred.RemoteFetch,
		last.NetSyncSec/float64(last.Iterations), pred.GlobalSync)
	return nil
}
