// Command hyscale trains a GNN with the HyScale-GNN hybrid runtime on a
// synthetic dataset shaped like one of the paper's benchmarks, scaled down
// to fit in memory. It reports per-epoch loss, accuracy, virtual-clock epoch
// time and throughput, and the task mapping the DRM engine converged to.
//
// With -nodes N > 1 it executes the multi-node extension (paper §VIII
// future work): the graph is partitioned across N sharded engine replicas
// (each with its own DRM instance) that exchange real gradients through a
// ring all-reduce, with remote-feature and all-reduce time charged on the
// virtual clock; the run ends by comparing the executed slowdown against
// the analytic cluster model's prediction.
//
// With -serve the trained model is handed to the online-serving subsystem
// (beyond the paper): a synthetic open-loop Zipf request stream flows
// through kind-aware admission control, a dynamic batcher, an LRU embedding
// cache, and a fleet of per-device workers (one per accelerator, plus the
// host CPU peer under -serve-cpu-peer) routed by earliest predicted
// completion, all charged on the same virtual clock; the run reports
// p50/p99 latency, throughput, the per-device batch split, and the analytic
// serving model's prediction for the same operating point. Combined with
// -accels the serving pool is heterogeneous: "-accels gpu:2,fpga:1 -serve"
// serves on 2 A5000 workers plus a U250 worker running the §IV-C dataflow
// kernels, each priced per kind.
//
// With -accels the accelerator fleet is overridden by an explicit —
// possibly heterogeneous — device list (the paper's title configuration):
// "-accels gpu:2,fpga:1" trains on dual EPYC + 2× A5000 + 1× U250, each
// device behind its kind-native link, with FPGA shares executing through
// the §IV-C dataflow kernels.
//
// Usage:
//
//	hyscale -dataset ogbn-products -model sage -platform cpu-fpga \
//	        -scale 2000 -epochs 5 -batch 256 [-nodes 4] \
//	        [-accels gpu:2,fpga:1] \
//	        [-serve -serve-rate 5000 -serve-requests 20000 \
//	         -serve-batch 32 -serve-window-us 500 -serve-cache 4096]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/trace"
)

func main() {
	var o options
	flag.StringVar(&o.dataset, "dataset", "ogbn-products", "dataset spec: ogbn-products | ogbn-papers100M | MAG240M(homo)")
	flag.StringVar(&o.model, "model", "sage", "model: gcn | sage")
	flag.StringVar(&o.platform, "platform", "cpu-fpga", "platform: cpu-gpu | cpu-fpga")
	flag.StringVar(&o.accels, "accels", "", "heterogeneous fleet override: kind[:count] list, e.g. gpu:2,fpga:1 (mixed devices get per-kind links)")
	flag.Int64Var(&o.scale, "scale", 2000, "dataset scale-down factor (graph is synthetic RMAT)")
	flag.IntVar(&o.epochs, "epochs", 5, "epochs to train")
	flag.IntVar(&o.batch, "batch", 256, "per-trainer mini-batch size")
	flag.Float64Var(&o.lr, "lr", 0.3, "learning rate")
	flag.Uint64Var(&o.seed, "seed", 1, "random seed")
	noHybrid := flag.Bool("no-hybrid", false, "disable hybrid CPU training")
	noTFP := flag.Bool("no-tfp", false, "disable two-stage feature prefetching")
	noDRM := flag.Bool("no-drm", false, "disable dynamic resource management")
	flag.IntVar(&o.tensorPar, "tensor-par", 0, "worker goroutines for the numeric tensor kernels (GEMM, aggregation); 0 = one per CPU")
	flag.StringVar(&o.simd, "simd", "auto", "SIMD dispatch level for the tensor kernels: auto | generic | sse | avx2 (every level is bit-identical; levels above the CPU's capability are rejected)")
	flag.BoolVar(&o.quantize, "quantize", false, "int8-quantize features on the PCIe link (§VIII extension)")
	flag.BoolVar(&o.saint, "saint", false, "use GraphSAINT random-walk sampling instead of neighbor sampling")
	flag.StringVar(&o.pipeline, "pipeline", "serial", "epoch execution schedule: serial | prefetch (prefetch overlaps iteration i+1's sampling/gather with iteration i's propagation; bit-identical trajectory)")
	flag.IntVar(&o.nodes, "nodes", 1, "execute a multi-node run with this many partitioned shards")
	flag.StringVar(&o.trace, "trace", "", "write per-epoch CSV telemetry to this file")
	flag.BoolVar(&o.serveMode, "serve", false, "after training, serve an open-loop request stream with the trained model")
	flag.Float64Var(&o.serveRate, "serve-rate", 5000, "serving: offered load in requests/second")
	flag.IntVar(&o.serveRequests, "serve-requests", 20000, "serving: requests in the open-loop stream")
	flag.IntVar(&o.serveBatch, "serve-batch", 32, "serving: dynamic batcher's max batch size")
	flag.Float64Var(&o.serveWindowUs, "serve-window-us", 500, "serving: dynamic batcher's max-wait deadline (µs)")
	flag.IntVar(&o.serveWorkers, "serve-workers", 2, "serving: accelerator workers (capped at the platform's accelerators; each binds one device)")
	flag.BoolVar(&o.servePeer, "serve-cpu-peer", false, "serving: add a host-CPU worker to the pool (kind-aware routing's landing spot for small batches)")
	flag.IntVar(&o.serveSmall, "serve-small", 0, "serving: route batches with at most this many cache-missing targets to the CPU peer (0 disables; needs -serve-cpu-peer)")
	flag.IntVar(&o.serveQueue, "serve-queue", 1024, "serving: admission-control queue capacity")
	flag.IntVar(&o.serveCache, "serve-cache", 4096, "serving: embedding-cache capacity in entries (0 disables)")
	flag.Float64Var(&o.serveZipf, "serve-zipf", 1.1, "serving: Zipf exponent of vertex popularity (0 = uniform)")
	flag.IntVar(&o.serveShards, "serve-shards", 1, "serving: embedding-cache lock-striped shards (rounded down to a power of two; 1 keeps the global-LRU eviction order)")
	flag.StringVar(&o.servePolicy, "serve-policy", "earliest", "serving: routing policy: earliest | least-loaded | affinity")
	flag.BoolVar(&o.routeTrace, "route-trace", false, "serving: record a per-batch routing decision trace (chosen worker plus every counterfactual) and print the head of it")
	flag.StringVar(&o.serveWorkload, "serve-workload", "", "serving: multi-cohort workload spec, e.g. 'web,rate=4000,class=interactive,zipf=1.1;etl,rate=1500,dist=weibull,shape=0.7,class=bulk' (replaces -serve-rate/-serve-zipf)")
	flag.StringVar(&o.serveFormation, "serve-formation", "", "serving: batch-formation policy: fcfs (default) | priority | sjf")
	flag.StringVar(&o.serveTrace, "serve-trace", "", "serving: record=PATH records the arrival stream to PATH and replays it in-run; replay=PATH serves a recorded trace")
	flag.StringVar(&o.faults, "faults", "", "deterministic fault schedule: serving events like 'fail,worker=1,at=0.05;slow,worker=0,from=0.02,to=0.04,factor=3' (needs -serve) or cluster events like 'fail,node=2,at=iter:5;degrade,link,from=iter:2,to=iter:6,factor=4' (needs -nodes > 1); empty runs fault-free")
	flag.IntVar(&o.retryBudget, "retry-budget", 0, "serving: re-dispatch attempts per batch after a worker failure (0 = default of 2, negative = no retries)")
	flag.StringVar(&o.serveSLO, "serve-slo", "", "serving: per-class latency SLO targets in milliseconds, e.g. 'interactive=2,standard=10,bulk=50' (enables deadline-miss accounting)")
	flag.Parse()
	o.hybrid, o.tfp, o.drm = !*noHybrid, !*noTFP, !*noDRM

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "hyscale:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	r, err := buildConfig(o)
	if err != nil {
		return err
	}
	if o.tensorPar > 0 {
		tensor.SetParallelism(o.tensorPar)
	}
	if _, err := tensor.SetSIMDLevel(r.SIMD); err != nil {
		return fmt.Errorf("-simd %q: %w", o.simd, err)
	}
	fmt.Printf("Materializing %s (scaled 1/%d: %d vertices, %d edges, f=%v; tensor kernels on %d goroutines, %s simd)...\n",
		o.dataset, o.scale, r.Spec.NumVertices, r.Spec.NumEdges, r.Spec.FeatDims,
		tensor.Parallelism(), tensor.ActiveSIMDLevel())
	ds, err := datagen.Materialize(r.Spec, 0.2, tensor.NewRNG(o.seed))
	if err != nil {
		return err
	}
	coreCfg := r.coreConfig(ds)
	if o.nodes > 1 {
		return runMultiNode(coreCfg, r, o.nodes, o.epochs, o.trace)
	}
	model, err := runSingleNode(r, coreCfg, o)
	if err != nil {
		return err
	}
	if o.serveMode {
		return runServe(r, ds, model)
	}
	return nil
}

// runSingleNode trains on one node and returns the trained model (a fresh
// randomly initialised one when -epochs 0 under -serve).
func runSingleNode(r *runSpec, coreCfg core.Config, o options) (*gnn.Model, error) {
	if o.epochs == 0 {
		fmt.Println("Skipping training (-epochs 0): serving an untrained model.")
		return gnn.NewModel(coreCfg.Model, tensor.NewRNG(o.seed))
	}
	engine, err := core.NewEngine(coreCfg)
	if err != nil {
		return nil, err
	}
	fmt.Printf("Training %s on %s (hybrid=%v tfp=%v drm=%v quantize=%v saint=%v pipeline=%s)\n\n",
		r.Kind, r.Plat.Name, o.hybrid, o.tfp, o.drm, o.quantize, o.saint, r.Pipeline)
	var rec trace.Recorder
	var fpgaAgg, fpgaUpd, fpgaTraffic int64
	fmt.Printf("%-6s %-10s %-10s %-14s %-10s\n", "epoch", "loss", "accuracy", "virtual-epoch", "MTEPS")
	for ep := 0; ep < o.epochs; ep++ {
		st, err := engine.RunEpoch()
		if err != nil {
			return nil, err
		}
		fpgaAgg += st.FPGA.AggCycles
		fpgaUpd += st.FPGA.UpdateCycles
		fpgaTraffic += st.FPGA.TrafficBytes
		fmt.Printf("%-6d %-10.4f %-10.3f %-14s %-10.1f\n",
			st.Epoch, st.Loss, st.Accuracy, fmt.Sprintf("%.4fs", st.VirtualSec), st.MTEPS)
		accelShare := 0
		if len(st.Assignment.AccelBatch) > 0 {
			accelShare = st.Assignment.AccelBatch[0]
		}
		rec.RecordEpoch(trace.EpochSample{
			Epoch: st.Epoch, Loss: st.Loss, Accuracy: st.Accuracy,
			VirtualSec: st.VirtualSec, MTEPS: st.MTEPS,
			CPUBatch: st.Assignment.CPUBatch, AccelBatch: accelShare,
		})
	}
	if o.trace != "" {
		f, err := os.Create(o.trace)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := rec.WriteEpochsCSV(f); err != nil {
			return nil, err
		}
		fmt.Printf("\nwrote %s\n", o.trace)
	}
	a := engine.Assignment()
	fmt.Printf("\nFinal task mapping: CPU batch %d, accel batches %v\n", a.CPUBatch, a.AccelBatch)
	fmt.Printf("CPU threads: sampler %d, loader %d, trainer %d\n",
		a.SampThreads, a.LoadThreads, a.TrainThreads)
	if fpgaAgg > 0 {
		fmt.Printf("FPGA dataflow kernels: %d aggregate cycles, %d update cycles, %.1f MB external traffic\n",
			fpgaAgg, fpgaUpd, float64(fpgaTraffic)/1e6)
	}
	if d := engine.ReplicasInSync(); d > 1e-6 {
		return nil, fmt.Errorf("replica divergence %g — synchronous SGD violated", d)
	}
	fmt.Println("Replica consistency check: all trainers hold identical weights.")
	return &gnn.Model{Cfg: coreCfg.Model, Params: engine.Params()}, nil
}

// runServe drives the open-loop stream against the trained model.
func runServe(r *runSpec, ds *datagen.Dataset, model *gnn.Model) error {
	cfg := r.serveConfig(ds, model)
	switch r.TraceMode {
	case "record":
		// Record the configured stream once, persist it, and replay it in-run
		// so the reported Stats are exactly what a later replay reproduces.
		tr, err := serve.GenerateTrace(cfg)
		if err != nil {
			return err
		}
		f, err := os.Create(r.TracePath)
		if err != nil {
			return err
		}
		if err := serve.WriteTrace(f, tr); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nrecorded %d arrivals to %s\n", len(tr.Requests), r.TracePath)
		cfg.Workload, cfg.Replay = nil, tr
	case "replay":
		f, err := os.Open(r.TracePath)
		if err != nil {
			return err
		}
		tr, err := serve.ReadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("\nreplaying %d recorded arrivals from %s\n", len(tr.Requests), r.TracePath)
		cfg.Replay = tr
		if cfg.NumRequests > len(tr.Requests) {
			cfg.NumRequests = len(tr.Requests)
		}
	}
	peer := ""
	if cfg.CPUPeer {
		peer = " + CPU peer"
	}
	stream := fmt.Sprintf("at %.0f req/s (Zipf %.2f)", cfg.RatePerSec, cfg.ZipfExponent)
	if cfg.Workload != nil {
		stream = fmt.Sprintf("from %d cohorts", len(cfg.Workload.Cohorts))
	} else if cfg.Replay != nil {
		stream = "from the recorded trace"
	}
	fmt.Printf("\nServing %d requests %s (batch ≤%d, window %.0fµs, formation %s, cache %d, %d workers%s)\n\n",
		cfg.NumRequests, stream, cfg.MaxBatch,
		cfg.WindowSec*1e6, cfg.Formation, cfg.CacheSize, cfg.Workers, peer)
	st, err := serve.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Println(st)
	if cfg.RouteTrace {
		fmt.Println("\nRouting decisions (-route-trace):")
		fmt.Println(st.TraceString(12))
	}
	return nil
}

// runMultiNode executes the sharded multi-node protocol and closes with the
// executed-vs-analytic slowdown comparison.
func runMultiNode(coreCfg core.Config, r *runSpec, nodes, epochs int, traceOut string) error {
	// Single-node baseline (one fill epoch + one steady-state epoch) for the
	// slowdown comparison.
	base, err := core.NewEngine(coreCfg)
	if err != nil {
		return err
	}
	var basePerIter float64
	for i := 0; i < 2; i++ {
		st, err := base.RunEpoch()
		if err != nil {
			return err
		}
		basePerIter = st.VirtualSec / float64(st.Iterations)
	}

	net := hw.Ethernet100G()
	m, err := cluster.NewMultiNode(cluster.MultiNodeConfig{
		Nodes: nodes, Net: net, Node: coreCfg, Faults: r.Faults,
	})
	if err != nil {
		return err
	}
	fmt.Printf("Training on %d nodes over %s (edge cut %.2f, balance %.2f, %d train vertices/node)\n\n",
		nodes, net.Name, m.EdgeCut(), m.Partition().Balance(), m.TrainPerNode())
	fmt.Printf("%-6s %-10s %-10s %-14s %-10s %-12s %-12s\n",
		"epoch", "loss", "accuracy", "virtual-epoch", "MTEPS", "net-fetch", "net-sync")
	var rec trace.Recorder
	var last *cluster.MultiNodeStats
	for ep := 0; ep < epochs; ep++ {
		st, err := m.RunEpoch()
		if err != nil {
			return err
		}
		last = st
		fmt.Printf("%-6d %-10.4f %-10.3f %-14s %-10.1f %-12s %-12s\n",
			st.Epoch, st.Loss, st.Accuracy, fmt.Sprintf("%.4fs", st.VirtualSec),
			st.MTEPS, fmt.Sprintf("%.4fs", st.NetFetchSec), fmt.Sprintf("%.4fs", st.NetSyncSec))
		a := m.Node(0).Assignment()
		accelShare := 0
		if len(a.AccelBatch) > 0 {
			accelShare = a.AccelBatch[0]
		}
		rec.RecordEpoch(trace.EpochSample{
			Epoch: st.Epoch, Loss: st.Loss, Accuracy: st.Accuracy,
			VirtualSec: st.VirtualSec, MTEPS: st.MTEPS,
			CPUBatch: a.CPUBatch, AccelBatch: accelShare,
		})
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteEpochsCSV(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", traceOut)
	}
	for i := 0; i < nodes; i++ {
		a := m.Node(i).Assignment()
		fmt.Printf("\nnode %d task mapping: CPU batch %d, accel batches %v (threads %d/%d/%d)",
			i, a.CPUBatch, a.AccelBatch, a.SampThreads, a.LoadThreads, a.TrainThreads)
	}
	fmt.Println()
	if last.FailedNodes > 0 {
		fmt.Printf("%d node(s) fail-stopped mid-run; the survivors re-ringed, rescaled the gradient mean and continued.\n",
			last.FailedNodes)
	}
	if d := m.ReplicasInSync(); d != 0 {
		return fmt.Errorf("fleet divergence %g — cross-node synchronous SGD violated", d)
	}
	fmt.Println("Fleet consistency check: all shards hold identical weights after the ring all-reduce.")

	execSlow := (last.VirtualSec / float64(last.Iterations)) / basePerIter
	pred, err := cluster.EpochTime(m.Analytic())
	if err != nil {
		return err
	}
	predSlow := cluster.PredictedSlowdown(pred, basePerIter)
	fmt.Printf("\nMulti-node erosion: executed %.3fx slower per iteration; analytic model predicts %.3fx\n",
		execSlow, predSlow)
	fmt.Printf("  per-iteration network: fetch %.3gs executed / %.3gs analytic, all-reduce %.3gs / %.3gs\n",
		last.NetFetchSec/float64(last.Iterations), pred.RemoteFetch,
		last.NetSyncSec/float64(last.Iterations), pred.GlobalSync)
	return nil
}
