package main

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fault"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// options mirrors the command-line flags one-to-one; buildConfig translates
// and validates them. Keeping the translation free of flag.* makes the
// dataset/model/platform/mode validation unit-testable.
type options struct {
	dataset   string
	model     string
	platform  string
	accels    string // heterogeneous fleet spec, e.g. "gpu:2,fpga:1"
	scale     int64
	epochs    int
	batch     int
	lr        float64
	seed      uint64
	hybrid    bool
	tfp       bool
	drm       bool
	tensorPar int
	simd      string
	quantize  bool
	saint     bool
	pipeline  string
	nodes     int
	trace     string
	// faults is the -faults deterministic fault schedule (see fault.Parse);
	// empty runs fault-free (byte-identical to a build without the fault
	// plane).
	faults string
	// retryBudget is -retry-budget: serving re-dispatch attempts per batch
	// after a worker failure (0 = runtime default, negative = no retries).
	retryBudget int

	serveMode     bool
	serveRate     float64
	serveRequests int
	serveBatch    int
	serveWindowUs float64
	serveWorkers  int
	servePeer     bool
	serveSmall    int
	serveQueue    int
	serveCache    int
	serveZipf     float64
	serveShards   int
	servePolicy   string
	routeTrace    bool
	// serveWorkload is the -serve-workload cohort spec (see
	// serve.ParseWorkloadSpec); empty keeps the single Poisson/Zipf stream.
	serveWorkload string
	// serveFormation is the -serve-formation batch-formation policy
	// (fcfs | priority | sjf; empty = fcfs).
	serveFormation string
	// serveTrace is the -serve-trace directive: "record=PATH" records the
	// run's arrival stream to PATH and replays it in-run; "replay=PATH"
	// serves a previously recorded trace.
	serveTrace string
	// serveSLO is the -serve-slo per-class latency target spec in
	// milliseconds (see serve.ParseSLOTargets); empty disables deadline-miss
	// accounting.
	serveSLO string
}

// runSpec is a fully validated run: the scaled dataset spec, resolved model
// kind and platform, and constructors for the runtime configs that only
// need the materialized dataset.
type runSpec struct {
	Spec    datagen.Spec
	Kind    gnn.Kind
	Plat    hw.Platform
	Fanouts []int
	// SIMD is the parsed -simd dispatch level ("auto" resolves to the
	// detected ceiling here; asking for a level the CPU lacks fails later,
	// at SetSIMDLevel time, so syntax and capability errors stay distinct).
	SIMD tensor.SIMDLevel
	// Pipeline is the parsed -pipeline epoch schedule (serial|prefetch).
	Pipeline core.PipelineMode
	// Workload is the parsed -serve-workload cohort spec (nil = legacy
	// single stream).
	Workload *serve.WorkloadSpec
	// Formation is the normalized -serve-formation policy name.
	Formation string
	// TraceMode/TracePath are the parsed -serve-trace directive
	// ("record" or "replay"; empty = no trace).
	TraceMode string
	TracePath string
	// Faults is the parsed -faults schedule (nil = fault-free).
	Faults *fault.Schedule
	// SLOTargets is the parsed -serve-slo per-class deadline spec.
	SLOTargets []serve.ClassSLO
	opts       options
}

// buildConfig resolves and validates every flag. Bad values return errors
// (never panics): unknown names, non-positive counts, and incompatible mode
// combinations are all rejected here, before any work starts.
func buildConfig(o options) (*runSpec, error) {
	spec, err := datagen.SpecByName(o.dataset)
	if err != nil {
		return nil, err
	}
	if o.scale < 1 {
		return nil, fmt.Errorf("-scale %d: need at least 1", o.scale)
	}
	r := &runSpec{Spec: spec.Scaled(o.scale), Fanouts: []int{25, 10}, opts: o}
	switch strings.ToLower(o.model) {
	case "gcn":
		r.Kind = gnn.GCN
	case "sage", "graphsage":
		r.Kind = gnn.SAGE
	default:
		return nil, fmt.Errorf("unknown model %q", o.model)
	}
	switch o.platform {
	case "cpu-gpu":
		r.Plat = hw.CPUGPUPlatform()
	case "cpu-fpga":
		r.Plat = hw.CPUFPGAPlatform()
	default:
		return nil, fmt.Errorf("unknown platform %q", o.platform)
	}
	if o.accels != "" {
		kinds, err := parseAccelSpec(o.accels)
		if err != nil {
			return nil, err
		}
		plat, err := hw.HeteroPlatform(kinds...)
		if err != nil {
			return nil, fmt.Errorf("-accels %q: %w", o.accels, err)
		}
		r.Plat = plat
	}
	if o.epochs < 0 {
		return nil, fmt.Errorf("-epochs %d: negative", o.epochs)
	}
	if o.tensorPar < 0 {
		return nil, fmt.Errorf("-tensor-par %d: negative (0 means one goroutine per CPU)", o.tensorPar)
	}
	lvl, err := tensor.ParseSIMDLevel(o.simd)
	if err != nil {
		return nil, fmt.Errorf("-simd %q: %w", o.simd, err)
	}
	r.SIMD = lvl
	pipe, err := core.ParsePipelineMode(o.pipeline)
	if err != nil {
		return nil, fmt.Errorf("-pipeline %q: %w", o.pipeline, err)
	}
	r.Pipeline = pipe
	if o.batch < 1 {
		return nil, fmt.Errorf("-batch %d: need at least 1", o.batch)
	}
	if o.lr <= 0 {
		return nil, fmt.Errorf("-lr %v: need a positive learning rate", o.lr)
	}
	if o.nodes < 1 {
		return nil, fmt.Errorf("-nodes %d: need at least 1", o.nodes)
	}
	if o.nodes > 1 && o.epochs < 1 {
		return nil, fmt.Errorf("-epochs %d: multi-node needs at least 1", o.epochs)
	}
	if !o.serveMode && o.epochs < 1 {
		return nil, fmt.Errorf("-epochs %d: training needs at least 1", o.epochs)
	}
	if o.faults != "" {
		sched, err := fault.Parse(o.faults)
		if err != nil {
			return nil, fmt.Errorf("-faults: %w", err)
		}
		if sched.HasServing() && !o.serveMode {
			return nil, fmt.Errorf("-faults %q: worker fault events need -serve", o.faults)
		}
		if sched.HasCluster() && o.nodes <= 1 {
			return nil, fmt.Errorf("-faults %q: node/link fault events need -nodes > 1", o.faults)
		}
		r.Faults = sched
	}
	if o.serveMode {
		if o.nodes > 1 {
			return nil, fmt.Errorf("-serve with -nodes %d: serving a partitioned fleet is not supported", o.nodes)
		}
		if o.serveRate <= 0 {
			return nil, fmt.Errorf("-serve-rate %v: need a positive request rate", o.serveRate)
		}
		if o.serveRequests < 1 {
			return nil, fmt.Errorf("-serve-requests %d: need at least 1", o.serveRequests)
		}
		if o.serveBatch < 1 {
			return nil, fmt.Errorf("-serve-batch %d: need at least 1", o.serveBatch)
		}
		if o.serveWindowUs < 0 {
			return nil, fmt.Errorf("-serve-window-us %v: negative", o.serveWindowUs)
		}
		if o.serveWorkers < 1 {
			return nil, fmt.Errorf("-serve-workers %d: need at least 1", o.serveWorkers)
		}
		if o.serveSmall < 0 {
			return nil, fmt.Errorf("-serve-small %d: negative", o.serveSmall)
		}
		if o.serveSmall > 0 && !o.servePeer && len(r.Plat.Accels) > 0 {
			return nil, fmt.Errorf("-serve-small %d: the small-batch split needs -serve-cpu-peer", o.serveSmall)
		}
		if o.serveQueue < 1 {
			return nil, fmt.Errorf("-serve-queue %d: need at least 1", o.serveQueue)
		}
		if o.serveCache < 0 {
			return nil, fmt.Errorf("-serve-cache %d: negative", o.serveCache)
		}
		if o.serveZipf < 0 {
			return nil, fmt.Errorf("-serve-zipf %v: negative", o.serveZipf)
		}
		if o.serveShards < 0 {
			return nil, fmt.Errorf("-serve-shards %d: negative", o.serveShards)
		}
		if _, err := serve.ParsePolicy(o.servePolicy); err != nil {
			return nil, fmt.Errorf("-serve-policy %q: %w", o.servePolicy, err)
		}
		formation, err := serve.ParseFormation(o.serveFormation)
		if err != nil {
			return nil, fmt.Errorf("-serve-formation %q: %w", o.serveFormation, err)
		}
		r.Formation = formation
		if o.serveWorkload != "" {
			spec, err := serve.ParseWorkloadSpec(o.serveWorkload)
			if err != nil {
				return nil, fmt.Errorf("-serve-workload: %w", err)
			}
			r.Workload = spec
		}
		if o.serveSLO != "" {
			targets, err := serve.ParseSLOTargets(o.serveSLO)
			if err != nil {
				return nil, fmt.Errorf("-serve-slo: %w", err)
			}
			r.SLOTargets = targets
		}
		if o.serveTrace != "" {
			mode, path, ok := strings.Cut(o.serveTrace, "=")
			if !ok || path == "" || (mode != "record" && mode != "replay") {
				return nil, fmt.Errorf("-serve-trace %q: want record=PATH or replay=PATH", o.serveTrace)
			}
			if mode == "replay" && r.Workload != nil {
				return nil, fmt.Errorf("-serve-trace replay with -serve-workload: a replayed trace already pins the arrival stream")
			}
			r.TraceMode, r.TracePath = mode, path
		}
	}
	return r, nil
}

// parseAccelSpec parses the -accels fleet specification: a comma-separated
// list of kind[:count] entries, e.g. "gpu:2,fpga:1" or "fpga". Device order
// follows the spec. Unknown kinds and non-positive counts are rejected.
func parseAccelSpec(s string) ([]hw.Kind, error) {
	var kinds []hw.Kind
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("-accels %q: empty device entry", s)
		}
		name, countStr, hasCount := strings.Cut(entry, ":")
		count := 1
		if hasCount {
			n, err := strconv.Atoi(countStr)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("-accels %q: bad device count %q", s, countStr)
			}
			count = n
		}
		var k hw.Kind
		switch strings.ToLower(name) {
		case "gpu":
			k = hw.GPU
		case "fpga":
			k = hw.FPGA
		default:
			return nil, fmt.Errorf("-accels %q: unknown device kind %q (want gpu or fpga)", s, name)
		}
		for i := 0; i < count; i++ {
			kinds = append(kinds, k)
		}
	}
	return kinds, nil
}

// coreConfig assembles the training runtime config for a materialized
// dataset.
func (r *runSpec) coreConfig(ds *datagen.Dataset) core.Config {
	return core.Config{
		Plat:             r.Plat,
		Data:             ds,
		Model:            gnn.Config{Kind: r.Kind, Dims: r.Spec.FeatDims},
		LR:               float32(r.opts.lr),
		BatchSize:        r.opts.batch,
		Fanouts:          r.Fanouts,
		Hybrid:           r.opts.hybrid,
		TFP:              r.opts.tfp,
		DRM:              r.opts.drm,
		QuantizeTransfer: r.opts.quantize,
		UseSaint:         r.opts.saint,
		Pipeline:         r.Pipeline,
		Seed:             r.opts.seed,
	}
}

// serveConfig assembles the serving config for a materialized dataset and a
// trained model.
func (r *runSpec) serveConfig(ds *datagen.Dataset, model *gnn.Model) serve.Config {
	return serve.Config{
		Plat:             r.Plat,
		Data:             ds,
		Model:            model,
		Fanouts:          r.Fanouts,
		ModelVersion:     1 + r.opts.epochs, // version advances with training
		NumRequests:      r.opts.serveRequests,
		RatePerSec:       r.opts.serveRate,
		ZipfExponent:     r.opts.serveZipf,
		MaxBatch:         r.opts.serveBatch,
		WindowSec:        r.opts.serveWindowUs * 1e-6,
		Workers:          r.opts.serveWorkers,
		CPUPeer:          r.opts.servePeer,
		SmallBatchCut:    r.opts.serveSmall,
		Workload:         r.Workload,
		Formation:        r.Formation,
		QueueCap:         r.opts.serveQueue,
		CacheSize:        r.opts.serveCache,
		CacheShards:      r.opts.serveShards,
		Policy:           r.opts.servePolicy,
		RouteTrace:       r.opts.routeTrace,
		QuantizeTransfer: r.opts.quantize,
		Seed:             r.opts.seed,
		Faults:           r.Faults,
		RetryBudget:      r.opts.retryBudget,
		SLOTargets:       r.SLOTargets,
	}
}
