package main

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gnn"
	"repro/internal/hw"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// validOptions mirrors the flag defaults.
func validOptions() options {
	return options{
		dataset: "ogbn-products", model: "sage", platform: "cpu-fpga",
		scale: 2000, epochs: 5, batch: 256, lr: 0.3, seed: 1,
		hybrid: true, tfp: true, drm: true, pipeline: "serial", nodes: 1,
		serveRate: 5000, serveRequests: 20000, serveBatch: 32,
		serveWindowUs: 500, serveWorkers: 2, serveQueue: 1024,
		serveCache: 4096, serveZipf: 1.1, serveShards: 1, servePolicy: "earliest",
	}
}

func TestBuildConfigDefaults(t *testing.T) {
	r, err := buildConfig(validOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != gnn.SAGE {
		t.Fatalf("kind = %v", r.Kind)
	}
	if r.Plat.Name == "" || len(r.Plat.Accels) == 0 {
		t.Fatalf("platform not resolved: %+v", r.Plat)
	}
	if r.Spec.NumVertices <= 0 || r.Spec.NumVertices >= 2_449_029 {
		t.Fatalf("spec not scaled: %d vertices", r.Spec.NumVertices)
	}
	if len(r.Fanouts) != r.Spec.Layers() {
		t.Fatalf("%d fanouts for %d layers", len(r.Fanouts), r.Spec.Layers())
	}
}

// -pipeline resolves to the core mode, reaches the training config, and
// rejects unknown schedules.
func TestBuildConfigPipelineMode(t *testing.T) {
	o := validOptions()
	o.pipeline = "prefetch"
	r, err := buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pipeline != core.PipelinePrefetch {
		t.Fatalf("pipeline = %v, want prefetch", r.Pipeline)
	}
	if got := r.coreConfig(nil).Pipeline; got != core.PipelinePrefetch {
		t.Fatalf("coreConfig pipeline = %v, want prefetch", got)
	}
	o.pipeline = "overlapped"
	if _, err := buildConfig(o); err == nil || !strings.Contains(err.Error(), "pipeline") {
		t.Fatalf("unknown pipeline mode accepted (err=%v)", err)
	}
}

func TestBuildConfigResolvesAliases(t *testing.T) {
	o := validOptions()
	o.model = "GraphSAGE"
	if _, err := buildConfig(o); err != nil {
		t.Fatalf("GraphSAGE alias rejected: %v", err)
	}
	o.model = "gcn"
	r, err := buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != gnn.GCN {
		t.Fatalf("kind = %v, want GCN", r.Kind)
	}
}

// -accels builds a heterogeneous fleet: device order follows the spec,
// counts expand, kinds are case-insensitive, and mixed fleets carry
// per-device links.
func TestBuildConfigAccelsSpec(t *testing.T) {
	o := validOptions()
	o.accels = "gpu:2,fpga:1"
	r, err := buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Plat.Accels) != 3 {
		t.Fatalf("fleet size %d, want 3", len(r.Plat.Accels))
	}
	wantKinds := []hw.Kind{hw.GPU, hw.GPU, hw.FPGA}
	for i, k := range wantKinds {
		if r.Plat.Accels[i].Kind != k {
			t.Fatalf("device %d kind %v, want %v", i, r.Plat.Accels[i].Kind, k)
		}
	}
	if len(r.Plat.AccelLinks) != 3 {
		t.Fatalf("per-device links missing: %v", r.Plat.AccelLinks)
	}
	if r.Plat.AccelLink(0).Name == r.Plat.AccelLink(2).Name {
		t.Fatal("GPU and FPGA should sit on different links")
	}

	o.accels = "FPGA" // bare kind, count defaults to 1, case-insensitive
	r, err = buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Plat.Accels) != 1 || r.Plat.Accels[0].Kind != hw.FPGA {
		t.Fatalf("bare-kind spec: %+v", r.Plat.Accels)
	}

	o.accels = "" // no override: the -platform preset stands
	r, err = buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Plat.Accels) != 4 {
		t.Fatalf("platform preset lost: %d accels", len(r.Plat.Accels))
	}
}

func TestBuildConfigAccelsRejectsBadSpecs(t *testing.T) {
	cases := map[string]string{
		"tpu:2":      "tpu",   // unknown device kind
		"cpu:1":      "cpu",   // not an accelerator
		"gpu:0":      "count", // non-positive count
		"gpu:-1":     "count", // negative count
		"gpu:x":      "count", // non-numeric count
		"gpu:2,,":    "empty", // empty entry
		"gpu:2:fpga": "count", // malformed separator use
	}
	for spec, want := range cases {
		o := validOptions()
		o.accels = spec
		_, err := buildConfig(o)
		if err == nil {
			t.Fatalf("-accels %q: expected error", spec)
		}
		if !strings.Contains(strings.ToLower(err.Error()), want) {
			t.Fatalf("-accels %q: error %q does not mention %q", spec, err, want)
		}
	}
}

// Every bad value must come back as an error mentioning the culprit — never
// a panic, never a silent default.
func TestBuildConfigRejectsBadValues(t *testing.T) {
	cases := map[string]struct {
		mutate func(*options)
		want   string // substring of the error
	}{
		"dataset":        {func(o *options) { o.dataset = "imagenet" }, "imagenet"},
		"model":          {func(o *options) { o.model = "transformer" }, "model"},
		"platform":       {func(o *options) { o.platform = "tpu-pod" }, "platform"},
		"scale":          {func(o *options) { o.scale = 0 }, "-scale"},
		"epochs":         {func(o *options) { o.epochs = -1 }, "-epochs"},
		"no-training":    {func(o *options) { o.epochs = 0 }, "-epochs"},
		"batch":          {func(o *options) { o.batch = 0 }, "-batch"},
		"lr":             {func(o *options) { o.lr = 0 }, "-lr"},
		"nodes":          {func(o *options) { o.nodes = 0 }, "-nodes"},
		"serve+nodes":    {func(o *options) { o.serveMode = true; o.nodes = 4 }, "-serve"},
		"serve-rate":     {func(o *options) { o.serveMode = true; o.serveRate = 0 }, "-serve-rate"},
		"serve-requests": {func(o *options) { o.serveMode = true; o.serveRequests = 0 }, "-serve-requests"},
		"serve-batch":    {func(o *options) { o.serveMode = true; o.serveBatch = 0 }, "-serve-batch"},
		"serve-window":   {func(o *options) { o.serveMode = true; o.serveWindowUs = -1 }, "-serve-window-us"},
		"serve-workers":  {func(o *options) { o.serveMode = true; o.serveWorkers = 0 }, "-serve-workers"},
		"serve-queue":    {func(o *options) { o.serveMode = true; o.serveQueue = 0 }, "-serve-queue"},
		"serve-cache":    {func(o *options) { o.serveMode = true; o.serveCache = -1 }, "-serve-cache"},
		"serve-zipf":     {func(o *options) { o.serveMode = true; o.serveZipf = -0.5 }, "-serve-zipf"},
		"serve-small":    {func(o *options) { o.serveMode = true; o.serveSmall = -1 }, "-serve-small"},
		"serve-shards":   {func(o *options) { o.serveMode = true; o.serveShards = -1 }, "-serve-shards"},
		"serve-policy":   {func(o *options) { o.serveMode = true; o.servePolicy = "roulette" }, "-serve-policy"},
		"small-no-peer":  {func(o *options) { o.serveMode = true; o.serveSmall = 4 }, "-serve-cpu-peer"},
		"multinode-0ep":  {func(o *options) { o.nodes = 2; o.epochs = 0 }, "multi-node"},
	}
	for name, tc := range cases {
		o := validOptions()
		tc.mutate(&o)
		_, err := buildConfig(o)
		if err == nil {
			t.Fatalf("%s: expected error", name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not name %q", name, err, tc.want)
		}
	}
}

// -serve -epochs 0 is the one zero-epoch mode that is legal (serve an
// untrained model).
func TestBuildConfigServeWithoutTraining(t *testing.T) {
	o := validOptions()
	o.serveMode = true
	o.epochs = 0
	if _, err := buildConfig(o); err != nil {
		t.Fatalf("serve without training rejected: %v", err)
	}
}

func TestConfigConstructors(t *testing.T) {
	o := validOptions()
	o.serveMode = true
	o.servePeer = true
	o.serveSmall = 4
	o.serveShards = 4
	o.servePolicy = "affinity"
	o.routeTrace = true
	r, err := buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	cc := r.coreConfig(nil) // dataset wired by the caller; translation only
	if cc.BatchSize != 256 || cc.LR != 0.3 || !cc.Hybrid || !cc.TFP || !cc.DRM {
		t.Fatalf("core config lost flags: %+v", cc)
	}
	if len(cc.Fanouts) != 2 || cc.Fanouts[0] != 25 {
		t.Fatalf("fanouts = %v", cc.Fanouts)
	}
	sc := r.serveConfig(nil, nil)
	if sc.MaxBatch != 32 || sc.WindowSec != 500e-6 || sc.CacheSize != 4096 ||
		sc.RatePerSec != 5000 || sc.QueueCap != 1024 {
		t.Fatalf("serve config lost flags: %+v", sc)
	}
	if !sc.CPUPeer || sc.SmallBatchCut != 4 {
		t.Fatalf("serve fleet flags lost: %+v", sc)
	}
	if sc.CacheShards != 4 || sc.Policy != "affinity" || !sc.RouteTrace {
		t.Fatalf("serve data-plane flags lost: %+v", sc)
	}
	if sc.ModelVersion != 1+o.epochs {
		t.Fatalf("model version %d", sc.ModelVersion)
	}
}

func TestBuildConfigTensorPar(t *testing.T) {
	o := validOptions()
	o.tensorPar = -1
	if _, err := buildConfig(o); err == nil {
		t.Fatal("expected error for negative -tensor-par")
	}
	for _, par := range []int{0, 1, 8} {
		o := validOptions()
		o.tensorPar = par
		r, err := buildConfig(o)
		if err != nil {
			t.Fatalf("-tensor-par %d rejected: %v", par, err)
		}
		if r.opts.tensorPar != par {
			t.Fatalf("run spec dropped -tensor-par: got %d want %d", r.opts.tensorPar, par)
		}
	}
}

func TestBuildConfigSIMD(t *testing.T) {
	o := validOptions()
	o.simd = "mmx"
	if _, err := buildConfig(o); err == nil {
		t.Fatal("expected error for unknown -simd level")
	}
	// "auto" and "" both resolve to the detected ceiling; explicit levels
	// resolve to themselves (capability is checked later, at apply time).
	for _, tc := range []struct {
		in   string
		want tensor.SIMDLevel
	}{
		{"auto", tensor.DetectedSIMDLevel()},
		{"", tensor.DetectedSIMDLevel()},
		{"generic", tensor.SIMDGeneric},
		{"sse", tensor.SIMDSSE},
		{"AVX2", tensor.SIMDAVX2},
	} {
		o := validOptions()
		o.simd = tc.in
		r, err := buildConfig(o)
		if err != nil {
			t.Fatalf("-simd %q rejected: %v", tc.in, err)
		}
		if r.SIMD != tc.want {
			t.Fatalf("-simd %q resolved to %v, want %v", tc.in, r.SIMD, tc.want)
		}
	}
}

// The serving workload, formation, and trace flags parse and normalize, and
// bad directives are rejected before any work starts.
func TestBuildConfigServeWorkloadFlags(t *testing.T) {
	o := validOptions()
	o.serveMode = true
	o.serveWorkload = "web,rate=4000,class=interactive,zipf=1.1;etl,rate=1500,dist=weibull,shape=0.7,class=bulk"
	o.serveFormation = "priority-fcfs"
	o.serveTrace = "record=/tmp/hyscale-trace.txt"
	r, err := buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload == nil || len(r.Workload.Cohorts) != 2 {
		t.Fatalf("workload spec not parsed: %+v", r.Workload)
	}
	if r.Formation != serve.FormationPriority {
		t.Fatalf("formation = %q, want normalized %q", r.Formation, serve.FormationPriority)
	}
	if r.TraceMode != "record" || r.TracePath != "/tmp/hyscale-trace.txt" {
		t.Fatalf("trace directive parsed to (%q, %q)", r.TraceMode, r.TracePath)
	}
	cfg := r.serveConfig(nil, nil)
	if cfg.Workload != r.Workload || cfg.Formation != serve.FormationPriority {
		t.Fatalf("serveConfig did not wire workload/formation: %+v", cfg)
	}

	bad := []func(*options){
		func(o *options) { o.serveFormation = "speculative" },
		func(o *options) { o.serveWorkload = "web" }, // missing rate
		func(o *options) { o.serveTrace = "dump=/tmp/x" },
		func(o *options) { o.serveTrace = "record=" },
		func(o *options) { // replay contradicts a generated workload
			o.serveWorkload = "web,rate=100"
			o.serveTrace = "replay=/tmp/x"
		},
	}
	for i, mutate := range bad {
		b := validOptions()
		b.serveMode = true
		mutate(&b)
		if _, err := buildConfig(b); err == nil {
			t.Errorf("bad serve flags case %d accepted", i)
		}
	}
}

// -faults, -retry-budget and -serve-slo parse, reach the runtime configs,
// and are rejected when the schedule's plane does not match the run mode.
func TestBuildConfigFaultFlags(t *testing.T) {
	o := validOptions()
	o.serveMode = true
	o.faults = "fail,worker=1,at=0.05;slow,worker=0,from=0.02,to=0.04,factor=3"
	o.retryBudget = 3
	o.serveSLO = "interactive=2,standard=10,bulk=50"
	r, err := buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults == nil || len(r.Faults.Events) != 2 {
		t.Fatalf("fault schedule not parsed: %+v", r.Faults)
	}
	if len(r.SLOTargets) != 3 {
		t.Fatalf("SLO targets not parsed: %+v", r.SLOTargets)
	}
	cfg := r.serveConfig(nil, nil)
	if cfg.Faults != r.Faults || cfg.RetryBudget != 3 || len(cfg.SLOTargets) != 3 {
		t.Fatalf("serveConfig did not wire the fault plane: %+v", cfg)
	}

	// Cluster events route to multi-node runs and are accepted there.
	o = validOptions()
	o.nodes = 4
	o.faults = "fail,node=2,at=iter:5;degrade,link,from=iter:2,to=iter:6,factor=4"
	if r, err = buildConfig(o); err != nil {
		t.Fatal(err)
	}
	if r.Faults == nil || !r.Faults.HasCluster() {
		t.Fatalf("cluster fault schedule not parsed: %+v", r.Faults)
	}

	bad := []struct {
		name   string
		mutate func(*options)
	}{
		{"garbage spec", func(o *options) { o.serveMode = true; o.faults = "melt,worker=1" }},
		{"worker events without -serve", func(o *options) { o.faults = "fail,worker=1,at=0.05" }},
		{"node events without -nodes", func(o *options) { o.faults = "fail,node=2,at=iter:5" }},
		{"bad slo spec", func(o *options) { o.serveMode = true; o.serveSLO = "interactive=fast" }},
	}
	for _, tc := range bad {
		b := validOptions()
		tc.mutate(&b)
		if _, err := buildConfig(b); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}
