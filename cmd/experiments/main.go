// Command experiments regenerates the paper's evaluation artifacts — every
// table and figure of §VI — from the models and simulators in this
// repository.
//
// Usage:
//
//	experiments                # run everything, in paper order
//	experiments -exp fig10     # one experiment
//	experiments -list          # list experiment names
//	experiments -seed 7        # change the simulation seed
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see -list) or 'all'")
	seed := flag.Uint64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiment names and exit")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	kernelsJSON := flag.String("kernels-json", "", "run the kernel before/after suite and record it at this path (e.g. BENCH_kernels.json), then exit")
	serveJSON := flag.String("serve-json", "", "run the serving data-plane suite and record it at this path (e.g. BENCH_serve.json), then exit")
	flag.Parse()

	if *serveJSON != "" {
		report, err := bench.WriteServeJSON(*serveJSON, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(bench.ServeTable(report))
		fmt.Println("wrote", *serveJSON)
		return
	}

	if *kernelsJSON != "" {
		report, err := bench.WriteKernelsJSON(*kernelsJSON, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(bench.KernelsTable(report))
		fmt.Println("wrote", *kernelsJSON)
		return
	}

	if *list {
		for _, n := range bench.Names() {
			fmt.Println(n)
		}
		return
	}
	render := func(t *bench.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t)
		}
	}
	if *exp == "all" {
		tables, err := bench.All(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			render(t)
		}
		return
	}
	t, err := bench.ByName(*exp, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	render(t)
}
